"""Two-machine RPC: client and server Fireflies on one wire.

The A5 benchmark models the remote server as a fixed turnaround delay
(the documented substitution).  This workload removes the substitution:
*two complete Firefly machines* — a client and a server, each with its
own MBus, caches, QBus and Topaz kernel — share one simulator and one
physical Ethernet segment.  Requests flow client → wire → server
mailbox; *server threads on the server's own CPUs* unmarshal, compute
the reply, and transmit it back over the same cable.

Comparing the measured saturation against A5's validates the
fixed-turnaround substitution (bench A12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.common.events import Simulator
from repro.common.queues import Mailbox
from repro.common.stats import StatSet
from repro.io.subsystem import IoSubsystem
from repro.topaz import ops
from repro.topaz.kernel import TopazKernel


@dataclass(frozen=True)
class TwoMachineRpcParams:
    """Call shape (mirrors RpcParams) plus the server-side work."""

    payload_bytes: int = 1400
    packets_per_call: int = 4
    reply_bytes: int = 64
    marshal_instructions: int = 150
    unmarshal_instructions: int = 100
    server_work_instructions: int = 900
    server_threads: int = 3

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0 or self.packets_per_call <= 0:
            raise ConfigurationError("call must carry data")
        if self.server_threads < 1:
            raise ConfigurationError("the server needs threads")


class TwoMachineRpc:
    """The paired machines, their wire, and the RPC plumbing."""

    def __init__(self, client_processors: int = 5,
                 server_processors: int = 3,
                 client_threads: int = 3,
                 params: Optional[TwoMachineRpcParams] = None,
                 seed: int = 1987) -> None:
        if client_threads < 1:
            raise ConfigurationError("need at least one client thread")
        self.params = params or TwoMachineRpcParams()
        self.sim = Simulator()
        self.client_threads = client_threads
        self.stats = StatSet("rpc2")

        self.client = TopazKernel.build(
            processors=client_processors, threads_hint=client_threads + 4,
            io_enabled=True, seed=seed, sim=self.sim)
        self.server = TopazKernel.build(
            processors=server_processors,
            threads_hint=self.params.server_threads + 4,
            io_enabled=True, seed=seed + 1, sim=self.sim)

        # One physical cable: both controllers contend for it.
        segment = self.sim.resource("ethernet.segment")
        self.client_io = IoSubsystem(self.client.machine)
        self.server_io = IoSubsystem(self.server.machine)
        self.client_io.ethernet._segment = segment
        self.server_io.ethernet._segment = segment

        _, self._client_buffer = self.client_io.alloc(512, "rpc buffer")
        _, self._server_buffer = self.server_io.alloc(512, "rpc buffer")

        # Frame delivery: the wire's far end is a mailbox per machine.
        self._server_inbox = Mailbox(self.sim, "server.inbox")
        self._client_inbox: Dict[int, Mailbox] = {}

        self._spawn_server_threads()
        self._spawn_client_threads()

    # -- server side -----------------------------------------------------

    def _spawn_server_threads(self) -> None:
        for i in range(self.params.server_threads):
            self.server.fork(self._server_body, name=f"server{i}")

    def _server_body(self):
        """One server thread: take a request, receive it, work, reply."""
        p = self.params
        while True:
            request = yield ops.DeviceCall(self._server_inbox.get(),
                                           label="rpc-accept")
            # The request's frames land in server memory via DMA.
            for _ in range(p.packets_per_call):
                yield ops.DeviceCall(
                    self.server_io.ethernet.receive_delivered_into(
                        self._server_buffer, p.payload_bytes),
                    label="rpc-rx")
            yield ops.Compute(p.unmarshal_instructions)
            yield ops.Compute(p.server_work_instructions)
            # Transmit the reply back over the shared cable.
            yield ops.DeviceCall(
                self.server_io.ethernet.transmit_from(
                    self._server_buffer, p.reply_bytes),
                label="rpc-reply-tx")
            self._client_inbox[request].put("reply")
            self.stats.incr("served")

    # -- client side --------------------------------------------------------

    def _spawn_client_threads(self) -> None:
        for i in range(self.client_threads):
            self._client_inbox[i] = Mailbox(self.sim, f"client{i}.inbox")
            self.client.fork(self._client_body, i, name=f"client{i}")

    def _client_body(self, client_id: int):
        p = self.params
        while True:
            yield ops.Compute(p.marshal_instructions)
            for _ in range(p.packets_per_call):
                yield ops.DeviceCall(
                    self.client_io.ethernet.transmit_from(
                        self._client_buffer, p.payload_bytes),
                    label="rpc-tx")
                self.stats.incr("data_bits", p.payload_bytes * 8)
            self._server_inbox.put(client_id)
            yield ops.DeviceCall(
                self.client_inbox(client_id).get(), label="rpc-await")
            yield ops.DeviceCall(
                self.client_io.ethernet.receive_delivered_into(
                    self._client_buffer, p.reply_bytes),
                label="rpc-reply-rx")
            yield ops.Compute(p.unmarshal_instructions)
            self.stats.incr("calls")

    def client_inbox(self, client_id: int) -> Mailbox:
        return self._client_inbox[client_id]

    # -- measurement ------------------------------------------------------------

    def run(self, warmup_cycles: int = 400_000,
            measure_cycles: int = 2_000_000) -> Dict[str, float]:
        """Measure sustained goodput with both machines live."""
        self.client_io.start()
        self.server_io.start()
        self.client.machine.start()
        self.server.machine.start()
        self.sim.run_until(self.sim.now + warmup_cycles)
        self.stats.mark_all()
        self.client.machine.mark_window()
        self.server.machine.mark_window()
        start = self.sim.now
        self.sim.run_until(start + measure_cycles)
        window = self.sim.now - start
        return {
            "goodput_mbit": self.stats["data_bits"].windowed
            / (window * 1e-7) / 1e6,
            "calls": self.stats["calls"].windowed,
            "served": self.stats["served"].windowed,
            "client_bus_load": self.client.machine.mbus.load(),
            "server_bus_load": self.server.machine.mbus.load(),
        }
