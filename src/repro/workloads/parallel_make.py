"""The parallel ``make`` of paper §6.

"We have implemented a parallel version of the Unix *make* utility,
which forks multiple compilations in parallel when possible."  The
model: a dependency DAG of compile/link jobs; the driver forks every
job as a thread, each job first Joins its dependencies, then acquires
one of ``-j`` build slots (a counting semaphore), reads its source
from disk, compiles (compute), writes its object, and releases the
slot.  Makespan versus processor count is the coarse-grained speedup
the Firefly was built to deliver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError
from repro.io.subsystem import IoSubsystem
from repro.topaz import ops
from repro.topaz.kernel import TopazKernel
from repro.workloads.semaphore import TopazSemaphore


@dataclass(frozen=True)
class MakeJob:
    """One node of the build DAG."""

    name: str
    compute_instructions: int = 3000
    source_blocks: int = 8
    object_blocks: int = 4
    dependencies: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.compute_instructions < 0:
            raise ConfigurationError("compute must be >= 0")
        if self.source_blocks < 1 or self.object_blocks < 1:
            raise ConfigurationError("jobs must touch the disk")


def sample_project(modules: int = 6) -> List[MakeJob]:
    """An N-module project plus a link step depending on everything.

    Compilation in this era is compute-dominated (tens of CPU-seconds
    per module on a 1-MIPS machine, scaled down here to keep simulation
    time reasonable), so parallel make's speedup is visible over the
    shared disk's seek costs.
    """
    jobs = [MakeJob(f"mod{i}.o",
                    compute_instructions=40_000 + 5_000 * (i % 3),
                    source_blocks=6 + (i % 4))
            for i in range(modules)]
    jobs.append(MakeJob("a.out", compute_instructions=8_000,
                        source_blocks=2, object_blocks=8,
                        dependencies=tuple(f"mod{i}.o"
                                           for i in range(modules))))
    return jobs


class ParallelMake:
    """Drives one build on a kernel + I/O subsystem."""

    def __init__(self, kernel: TopazKernel, io: IoSubsystem,
                 jobs: List[MakeJob], max_parallel: int = 4) -> None:
        if max_parallel < 1:
            raise ConfigurationError("-j must be >= 1")
        names = [j.name for j in jobs]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate job names")
        known = set(names)
        for job in jobs:
            missing = set(job.dependencies) - known
            if missing:
                raise ConfigurationError(
                    f"{job.name} depends on unknown {sorted(missing)}")
        self.kernel = kernel
        self.io = io
        self.jobs = jobs
        self.slots = TopazSemaphore(kernel, max_parallel, "make.slots")
        self._threads: Dict[str, object] = {}
        # Each job gets a disk extent and an arena buffer.
        self._extents: Dict[str, int] = {}
        lbn = 100
        for job in jobs:
            self._extents[job.name] = lbn
            lbn += job.source_blocks + job.object_blocks + 4
        buf, buf_qbus = io.alloc(128 * 8, "make buffer")
        self._buffer_qbus = buf_qbus

    def _job_body(self, job: MakeJob):
        deps = [self._threads[d] for d in job.dependencies]
        slots, io, extent = self.slots, self.io, self._extents[job.name]
        buffer_qbus = self._buffer_qbus

        def body():
            for dep in deps:
                yield ops.Join(dep)
            yield from slots.acquire()
            yield ops.DeviceCall(io.disk.read_blocks(
                extent, min(job.source_blocks, 8), buffer_qbus),
                label=f"read:{job.name}")
            yield ops.Compute(job.compute_instructions)
            yield ops.DeviceCall(io.disk.write_blocks(
                extent + job.source_blocks, min(job.object_blocks, 8),
                buffer_qbus), label=f"write:{job.name}")
            yield from slots.release()
            return job.name
        return body

    def start(self) -> None:
        """Fork every job (in topological order so handles exist)."""
        remaining = list(self.jobs)
        forked = set()
        while remaining:
            progressed = False
            for job in list(remaining):
                if all(d in forked for d in job.dependencies):
                    self._threads[job.name] = self.kernel.fork(
                        self._job_body(job), name=f"make:{job.name}")
                    forked.add(job.name)
                    remaining.remove(job)
                    progressed = True
            if not progressed:
                raise ConfigurationError("dependency cycle in build DAG")

    def run(self, max_cycles: int = 80_000_000) -> int:
        """Build everything; return the makespan in cycles."""
        self.start()
        self.io.start()
        start = self.kernel.sim.now
        self.kernel.machine.start()
        deadline = start + max_cycles
        while self.kernel.sim.now < deadline:
            if all(t.done for t in self._threads.values()):
                return self.kernel.sim.now - start
            self.kernel.sim.run_until(
                min(self.kernel.sim.now + 20_000, deadline))
        raise ConfigurationError(
            "build did not finish within the horizon (deadlock or "
            "undersized horizon)")
