"""Workloads: the programs the reproduction measures.

- :mod:`repro.workloads.threads_exerciser` — the Topaz Threads
  exerciser of Table 2 (heavy synchronisation and migration).
- :mod:`repro.workloads.parallel_make` — the parallel ``make`` of §6.
- :mod:`repro.workloads.parallel_compiler` — the experimental
  Modula-2+ compiler that "compiles each procedure body in parallel".
- :mod:`repro.workloads.matrix` — a medium-grained data-parallel
  kernel with real shared operands.
- :mod:`repro.workloads.multiprogramming` — the intro's coarse-grained
  scenario (several unrelated activities at once).
- :mod:`repro.workloads.rpc_server` — the RPC throughput workload
  behind the 4.6 Mbit/s claim.
- :mod:`repro.workloads.gc_app` — the reference-counted application
  with a concurrent collector thread (§6's GC claim).

(The calibrated synthetic single-program workload lives with the
processor model in :mod:`repro.processor.refgen`.)
"""

from repro.workloads.threads_exerciser import (
    ExerciserParams,
    build_exerciser,
    exerciser_expectations,
)
from repro.workloads.file_system import (
    FileService,
    FileSystemParams,
    FileSystemWorkload,
)
from repro.workloads.gc_app import GcApplication, GcParams
from repro.workloads.parallel_make import MakeJob, ParallelMake
from repro.workloads.rpc_two_machine import TwoMachineRpc, TwoMachineRpcParams
from repro.workloads.parallel_compiler import ParallelCompiler
from repro.workloads.matrix import MatrixWorkload
from repro.workloads.multiprogramming import MultiprogrammingMix
from repro.workloads.rpc_server import RpcWorkload

__all__ = [
    "ExerciserParams",
    "FileService",
    "FileSystemParams",
    "FileSystemWorkload",
    "GcApplication",
    "GcParams",
    "MakeJob",
    "MatrixWorkload",
    "MultiprogrammingMix",
    "ParallelCompiler",
    "ParallelMake",
    "RpcWorkload",
    "TwoMachineRpc",
    "TwoMachineRpcParams",
    "build_exerciser",
    "exerciser_expectations",
]
