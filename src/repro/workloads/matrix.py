"""A medium-grained data-parallel kernel: threaded matrix multiply.

Paper §2: "we knew that some important applications could be modified
to take advantage of parallelism".  This workload is the reproduction's
canonical such application: C = A x B with the rows of C partitioned
among threads.  A and B live in *shared* simulated memory and are read
through the caches (read-only sharing: lines go SHARED, reads stay
quiet); each thread writes its own C rows (private dirty lines).  The
result is verified against numpy, so the workload doubles as an
end-to-end correctness test of the whole stack — coherence protocol,
bus, runtime.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.common.errors import ConfigurationError
from repro.topaz import ops
from repro.topaz.kernel import TopazKernel


class MatrixWorkload:
    """C = A x B across ``workers`` threads on one kernel."""

    def __init__(self, kernel: TopazKernel, n: int = 12,
                 workers: int = 4, seed: int = 42) -> None:
        if n < 1 or workers < 1:
            raise ConfigurationError("matrix size and workers must be >= 1")
        self.kernel = kernel
        self.n = n
        self.workers = min(workers, n)
        rng = np.random.default_rng(seed)
        self.a = rng.integers(0, 100, size=(n, n), dtype=np.int64)
        self.b = rng.integers(0, 100, size=(n, n), dtype=np.int64)

        words = n * n
        self._a_base = kernel.alloc_shared(words, "matrix A")
        self._b_base = kernel.alloc_shared(words, "matrix B")
        self._c_base = kernel.alloc_shared(words, "matrix C")
        memory = kernel.machine.memory
        for i in range(n):
            for j in range(n):
                memory.poke(self._a_base + i * n + j, int(self.a[i, j]))
                memory.poke(self._b_base + i * n + j, int(self.b[i, j]))
        self._threads: List = []

    def _worker(self, first_row: int, last_row: int):
        n, a_base, b_base, c_base = (self.n, self._a_base, self._b_base,
                                     self._c_base)

        def body():
            for i in range(first_row, last_row):
                for j in range(n):
                    acc = 0
                    for k in range(n):
                        left = yield ops.Read(a_base + i * n + k)
                        right = yield ops.Read(b_base + k * n + j)
                        acc += left * right
                        yield ops.Compute(1)   # the multiply-add
                    yield ops.Write(c_base + i * n + j, acc)
            return last_row - first_row
        return body

    def start(self) -> None:
        """Fork the row-band workers."""
        rows_per = -(-self.n // self.workers)
        for w in range(self.workers):
            first = w * rows_per
            last = min(self.n, first + rows_per)
            if first >= last:
                break
            self._threads.append(self.kernel.fork(
                self._worker(first, last), name=f"mm{w}"))

    def run(self, max_cycles: int = 200_000_000) -> int:
        """Multiply; verify against numpy; return elapsed cycles."""
        self.start()
        start = self.kernel.sim.now
        self.kernel.machine.start()
        deadline = start + max_cycles
        while self.kernel.sim.now < deadline:
            if all(t.done for t in self._threads):
                self.verify()
                return self.kernel.sim.now - start
            self.kernel.sim.run_until(
                min(self.kernel.sim.now + 50_000, deadline))
        raise ConfigurationError("multiply did not finish in the horizon")

    def result(self) -> np.ndarray:
        """C as currently visible in coherent memory."""
        n = self.n
        out = np.zeros((n, n), dtype=np.int64)
        for i in range(n):
            for j in range(n):
                out[i, j] = self.kernel._coherent_value(
                    self._c_base + i * n + j)
        return out

    def verify(self) -> None:
        """Assert the simulated result equals the numpy product."""
        expected = self.a @ self.b
        actual = self.result()
        if not np.array_equal(expected, actual):
            bad = np.argwhere(expected != actual)[0]
            raise AssertionError(
                f"matrix mismatch at {tuple(bad)}: "
                f"expected {expected[tuple(bad)]}, got {actual[tuple(bad)]}")
