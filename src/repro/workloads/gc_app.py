"""The concurrent garbage collector claim of §6.

"Single threaded applications that use garbage collection also
benefit.  The application must pay the in-line cost of reference
counted assignments, but the collector itself runs as a separate
thread on another processor."

Model: a single-threaded Modula-2+-style application performs work
units; each unit pays the in-line cost of reference-counted
assignments (extra instructions plus reads/writes of refcount words in
the heap) and allocates cells.  When allocations pass a threshold the
heap must be collected — a trace-and-sweep pass reading every cell.

Two strategies:

- **stop-the-world** — the application collects in-line (the
  uniprocessor experience);
- **concurrent** — a collector thread performs the passes; the
  application requests one and keeps mutating.  On a multiprocessor
  the pass runs on another CPU, off the application's critical path.

Fairness: the application's completion includes draining outstanding
collection requests (a request/done handshake through shared memory),
so every configuration completes identical collection work — the only
difference is *where in time* it runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.topaz import ops
from repro.topaz.kernel import TopazKernel


@dataclass(frozen=True)
class GcParams:
    """Costs of the reference-counted mutator and the collector."""

    work_units: int = 60
    instructions_per_unit: int = 140
    ref_assignments_per_unit: int = 10
    refcount_overhead_instructions: int = 2
    allocations_per_unit: int = 16
    heap_cells: int = 384
    collect_threshold: int = 288
    collector_instructions_per_cell: int = 3

    def __post_init__(self) -> None:
        if self.work_units < 1 or self.heap_cells < 2:
            raise ConfigurationError("degenerate GC workload")
        if not 0 < self.collect_threshold <= self.heap_cells:
            raise ConfigurationError("threshold must fit the heap")


class GcApplication:
    """One reference-counted application plus its collector."""

    def __init__(self, kernel: TopazKernel,
                 params: Optional[GcParams] = None,
                 concurrent_collector: bool = True) -> None:
        self.kernel = kernel
        self.params = params or GcParams()
        self.concurrent = concurrent_collector
        p = self.params
        # The heap: one refcount word per cell, genuinely shared
        # between the mutator and the collector.
        self.heap_base = kernel.alloc_shared(p.heap_cells, "gc heap")
        self.requested_address = kernel.alloc_shared(1, "gc requested")
        self.done_address = kernel.alloc_shared(1, "gc done")
        self.gc_mutex = kernel.mutex("gc")
        self.gc_needed = kernel.condition("gc_needed")
        self.gc_done = kernel.condition("gc_done")
        self._allocated = 0
        self._cursor = 0
        self.app_thread = None
        self.collector_thread = None

    # -- program fragments ------------------------------------------------

    def _mutate(self):
        """One work unit: compute + refcount traffic + allocation."""
        p = self.params
        yield ops.Compute(p.instructions_per_unit)
        for i in range(p.ref_assignments_per_unit):
            # The in-line cost: bump one refcount, drop another.
            cell = self.heap_base + ((self._cursor + i * 7) % p.heap_cells)
            count = yield ops.Read(cell)
            yield ops.Write(cell, count + 1)
            yield ops.Compute(p.refcount_overhead_instructions)
        for _ in range(p.allocations_per_unit):
            cell = self.heap_base + self._cursor
            self._cursor = (self._cursor + 1) % p.heap_cells
            yield ops.Write(cell, 1)
            self._allocated += 1

    def _collect(self):
        """A trace-and-sweep pass over the whole heap.

        (Heap-occupancy accounting is done by the requester at request
        time, so stop-the-world and concurrent runs schedule identical
        collection work.)
        """
        p = self.params
        for i in range(p.heap_cells):
            yield ops.Read(self.heap_base + i)
            yield ops.Compute(p.collector_instructions_per_cell)

    def _app_body(self):
        p = self.params
        for unit in range(p.work_units):
            yield from self._mutate()
            if self._allocated >= p.collect_threshold:
                self._allocated //= 2  # account the upcoming collection
                if self.concurrent:
                    yield from self._request_collection()
                else:
                    yield from self._collect()
                    done = yield ops.Read(self.done_address)
                    yield ops.Write(self.done_address, done + 1)
        if self.concurrent:
            yield from self._drain_collections()
        return p.work_units

    def _request_collection(self):
        yield ops.Lock(self.gc_mutex)
        requested = yield ops.Read(self.requested_address)
        yield ops.Write(self.requested_address, requested + 1)
        yield ops.Signal(self.gc_needed)
        yield ops.Unlock(self.gc_mutex)

    def _drain_collections(self):
        """Fairness: completion includes outstanding collector work."""
        yield ops.Lock(self.gc_mutex)
        while True:
            requested = yield ops.Read(self.requested_address)
            done = yield ops.Read(self.done_address)
            if done >= requested:
                break
            yield ops.Wait(self.gc_done, self.gc_mutex)
        yield ops.Unlock(self.gc_mutex)

    def _collector_body(self):
        while True:
            yield ops.Lock(self.gc_mutex)
            while True:
                requested = yield ops.Read(self.requested_address)
                done = yield ops.Read(self.done_address)
                if requested > done:
                    break
                yield ops.Wait(self.gc_needed, self.gc_mutex)
            yield ops.Unlock(self.gc_mutex)
            yield from self._collect()
            yield ops.Lock(self.gc_mutex)
            done = yield ops.Read(self.done_address)
            yield ops.Write(self.done_address, done + 1)
            yield ops.Signal(self.gc_done)
            yield ops.Unlock(self.gc_mutex)

    # -- running -------------------------------------------------------------

    def run(self, max_cycles: int = 100_000_000) -> int:
        """Run the application to completion; return elapsed cycles.

        Completion includes all requested collections (see class doc).
        """
        self.app_thread = self.kernel.fork(self._app_body, name="mutator")
        if self.concurrent:
            self.collector_thread = self.kernel.fork(self._collector_body,
                                                     name="collector")
        sim = self.kernel.sim
        start = sim.now
        self.kernel.machine.start()
        deadline = start + max_cycles
        while sim.now < deadline:
            if self.app_thread.done:
                return sim.now - start
            sim.run_until(min(sim.now + 20_000, deadline))
        raise ConfigurationError("GC application did not finish")

    @property
    def collections(self) -> int:
        return self.kernel._coherent_value(self.done_address)
