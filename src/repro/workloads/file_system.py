"""The threaded file system of §6.

"Standard applications also benefit from multiprocessing.  The file
system uses multiple threads to do read-ahead and write-behind..."
(and §3: "the disk is buffered from applications by a large read cache
and a large write buffer").

Model: a block-cache file service over the RQDX3.  An application
thread reads a file sequentially (and rewrites some blocks).  Helper
threads provide the two §6 mechanisms:

- **read-ahead** — when the application reads block n, a helper is
  nudged to fetch block n+1..n+depth into the cache before it is
  asked for;
- **write-behind** — application writes complete into the write
  buffer immediately; a helper drains the buffer to disk in the
  background.

With helpers disabled, every miss stalls the application for a full
disk access and every write stalls for the write-through — the
uniprocessor-era file system.  The ablation (A13) measures elapsed
application time both ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.common.errors import ConfigurationError
from repro.io.subsystem import IoSubsystem
from repro.topaz import ops
from repro.topaz.kernel import TopazKernel


@dataclass(frozen=True)
class FileSystemParams:
    """Shape of the file service and its workload."""

    file_blocks: int = 24
    read_ahead_depth: int = 2
    rewrite_every: int = 3          # write every k-th block read
    compute_per_block: int = 6000   # application work per block
    helper_threads: int = 2
    base_lbn: int = 500

    def __post_init__(self) -> None:
        if self.file_blocks < 1:
            raise ConfigurationError("file must have blocks")
        if self.read_ahead_depth < 0 or self.helper_threads < 1:
            raise ConfigurationError("bad helper configuration")


class FileService:
    """A block cache with optional read-ahead / write-behind helpers."""

    def __init__(self, kernel: TopazKernel, io: IoSubsystem,
                 params: Optional[FileSystemParams] = None,
                 helpers_enabled: bool = True) -> None:
        self.kernel = kernel
        self.io = io
        self.params = params or FileSystemParams()
        self.helpers_enabled = helpers_enabled
        _, self._buffer_qbus = io.alloc(128 * 4, "fs buffer")

        # Cache state is host-side bookkeeping (which blocks are
        # resident); the *timing* comes from real disk DeviceCalls and
        # the synchronisation from real Topaz primitives.
        self._cached: Set[int] = set()
        self._dirty: List[int] = []
        self._inflight: Set[int] = set()
        self._writes_inflight = 0
        self._readahead_queue: List[int] = []

        self.mutex = kernel.mutex("fs")
        self.block_arrived = kernel.condition("fs_arrived")
        self.work_available = kernel.condition("fs_work")
        self._helper_threads = []
        self.stats = {"app_reads": 0, "hits": 0, "demand_misses": 0,
                      "readaheads": 0, "writebehinds": 0}

    # -- helper side ----------------------------------------------------

    def start_helpers(self) -> None:
        if not self.helpers_enabled:
            return
        for i in range(self.params.helper_threads):
            self._helper_threads.append(
                self.kernel.fork(self._helper_body, name=f"fs-helper{i}"))

    def _helper_body(self):
        """Serve read-ahead and write-behind work until told to stop."""
        while True:
            yield ops.Lock(self.mutex)
            while not self._pending_work():
                yield ops.Wait(self.work_available, self.mutex)
            job = self._take_job()
            yield ops.Unlock(self.mutex)
            if job is None:
                return
            kind, block = job
            if kind == "readahead":
                yield from self._fetch(block)
                self.stats["readaheads"] += 1
                # Wake any application thread waiting on this block.
                yield ops.Lock(self.mutex)
                yield ops.Broadcast(self.block_arrived)
                yield ops.Unlock(self.mutex)
            else:
                self._writes_inflight += 1
                yield ops.DeviceCall(self.io.disk.write_blocks(
                    self.params.base_lbn + block, 1, self._buffer_qbus),
                    label=f"fs-wb{block}")
                self._writes_inflight -= 1
                self.stats["writebehinds"] += 1

    def _pending_work(self) -> bool:
        return bool(self._dirty or self._readahead_queue)

    def _take_job(self):
        if self._dirty:
            return ("writebehind", self._dirty.pop(0))
        if self._readahead_queue:
            return ("readahead", self._readahead_queue.pop(0))
        return None  # stopping

    def _fetch(self, block: int):
        """Bring one block into the cache (helper or demand path)."""
        if block in self._cached or block in self._inflight:
            return
        self._inflight.add(block)
        yield ops.DeviceCall(self.io.disk.read_blocks(
            self.params.base_lbn + block, 1, self._buffer_qbus),
            label=f"fs-rd{block}")
        self._inflight.discard(block)
        self._cached.add(block)

    # -- application side ---------------------------------------------------

    def read_block(self, block: int):
        """Topaz fragment: read one block through the cache."""
        self.stats["app_reads"] += 1
        params = self.params
        if block in self._cached:
            self.stats["hits"] += 1
        elif block in self._inflight:
            # A helper is already fetching it; wait for arrival.
            yield ops.Lock(self.mutex)
            while block not in self._cached:
                yield ops.Wait(self.block_arrived, self.mutex)
            yield ops.Unlock(self.mutex)
            self.stats["hits"] += 1
        else:
            self.stats["demand_misses"] += 1
            yield from self._fetch(block)
        # Schedule read-ahead for the following blocks.
        if self.helpers_enabled and params.read_ahead_depth:
            yield ops.Lock(self.mutex)
            for ahead in range(block + 1,
                               min(block + 1 + params.read_ahead_depth,
                                   params.file_blocks)):
                if ahead not in self._cached \
                        and ahead not in self._inflight \
                        and ahead not in self._readahead_queue:
                    self._readahead_queue.append(ahead)
                    yield ops.Signal(self.work_available)
            yield ops.Unlock(self.mutex)

    def write_block(self, block: int):
        """Topaz fragment: write one block (buffered when enabled)."""
        if self.helpers_enabled:
            yield ops.Lock(self.mutex)
            self._dirty.append(block)
            yield ops.Signal(self.work_available)
            yield ops.Unlock(self.mutex)
        else:
            yield ops.DeviceCall(self.io.disk.write_blocks(
                self.params.base_lbn + block, 1, self._buffer_qbus),
                label=f"fs-w{block}")

    def drain(self):
        """Topaz fragment: flush the write buffer (application exit).

        Waits until the buffer is empty *and* no write-behind is still
        in flight, so elapsed-time comparisons against the synchronous
        file system account for identical disk work.
        """
        while self._dirty or self._writes_inflight:
            yield ops.Lock(self.mutex)
            yield ops.Signal(self.work_available)
            yield ops.Unlock(self.mutex)
            yield ops.YieldCpu()
            yield ops.Compute(20)


class FileSystemWorkload:
    """The measured scenario: sequential read + periodic rewrite."""

    def __init__(self, processors: int = 3, helpers_enabled: bool = True,
                 params: Optional[FileSystemParams] = None,
                 seed: int = 61) -> None:
        self.kernel = TopazKernel.build(processors=processors,
                                        threads_hint=8, io_enabled=True,
                                        seed=seed)
        self.io = IoSubsystem(self.kernel.machine)
        self.service = FileService(self.kernel, self.io, params,
                                   helpers_enabled=helpers_enabled)
        self.app_thread = None

    def _app_body(self):
        service = self.service
        params = service.params
        for block in range(params.file_blocks):
            yield from service.read_block(block)
            yield ops.Compute(params.compute_per_block)
            if block % params.rewrite_every == 0:
                yield from service.write_block(block)
        yield from service.drain()
        return params.file_blocks

    def run(self, max_cycles: int = 400_000_000) -> int:
        """Run the application; return its elapsed cycles."""
        self.service.start_helpers()
        self.app_thread = self.kernel.fork(self._app_body, name="app")
        self.io.start()
        sim = self.kernel.sim
        start = sim.now
        self.kernel.machine.start()
        deadline = start + max_cycles
        while sim.now < deadline:
            if self.app_thread.done:
                return sim.now - start
            sim.run_until(min(sim.now + 50_000, deadline))
        raise ConfigurationError("file workload did not finish")
