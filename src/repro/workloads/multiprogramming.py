"""The coarse-grained multiprogramming mix of the paper's introduction.

§2: "workstation users like to keep several activities running at once
— profiling an application while compiling a module while reading
mail.  Pipelined execution is another form of coarse-grained
concurrency.  Experienced Ultrix users, for example, often use
pipelines of applications such as the text processing utilities awk,
grep, and sed."

The mix here: several independent single-threaded 'applications'
(placed in Ultrix address spaces — which permit exactly one thread)
plus a three-stage text pipeline whose stages pass items through
bounded shared-memory buffers guarded by mutex + condition pairs.  The
multiprogramming benchmark measures each application's progress alone
versus together — §6's claim that "the performance of the system is
much more predictable than that of a time-shared uniprocessor".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.topaz import ops
from repro.topaz.address_space import SpaceKind
from repro.topaz.kernel import TopazKernel


class BoundedBuffer:
    """A classic bounded buffer in simulated shared memory."""

    def __init__(self, kernel: TopazKernel, capacity: int,
                 name: str) -> None:
        if capacity < 1:
            raise ConfigurationError("buffer capacity must be >= 1")
        self.capacity = capacity
        self.mutex = kernel.mutex(f"{name}.mutex")
        self.not_full = kernel.condition(f"{name}.not_full")
        self.not_empty = kernel.condition(f"{name}.not_empty")
        self.count_address = kernel.alloc_shared(1, f"{name}.count")
        self.slots = kernel.alloc_shared(capacity, f"{name}.slots")
        self._write_index = 0
        self._read_index = 0

    def put(self, value: int):
        """Topaz fragment: blocking enqueue."""
        yield ops.Lock(self.mutex)
        while True:
            count = yield ops.Read(self.count_address)
            if count < self.capacity:
                break
            yield ops.Wait(self.not_full, self.mutex)
        slot = self.slots + self._write_index
        self._write_index = (self._write_index + 1) % self.capacity
        yield ops.Write(slot, value)
        yield ops.Write(self.count_address, count + 1)
        yield ops.Signal(self.not_empty)
        yield ops.Unlock(self.mutex)

    def take(self):
        """Topaz fragment: blocking dequeue; 'returns' via the last Read."""
        yield ops.Lock(self.mutex)
        while True:
            count = yield ops.Read(self.count_address)
            if count > 0:
                break
            yield ops.Wait(self.not_empty, self.mutex)
        slot = self.slots + self._read_index
        self._read_index = (self._read_index + 1) % self.capacity
        value = yield ops.Read(slot)
        yield ops.Write(self.count_address, count - 1)
        yield ops.Signal(self.not_full)
        yield ops.Unlock(self.mutex)
        return value


@dataclass
class AppProgress:
    """Progress counters for one activity in the mix."""

    name: str
    address: int
    iterations: int = 0


class MultiprogrammingMix:
    """Independent apps + an awk|grep|sed-style pipeline."""

    def __init__(self, kernel: TopazKernel,
                 independent_apps: int = 3,
                 app_burst_instructions: int = 400,
                 pipeline_items: int = 0,
                 pipeline_stage_instructions: int = 120,
                 buffer_capacity: int = 4) -> None:
        if independent_apps < 0 or pipeline_items < 0:
            raise ConfigurationError("counts must be >= 0")
        self.kernel = kernel
        self.progress: Dict[str, AppProgress] = {}
        self._threads: List = []

        for i in range(independent_apps):
            name = ("profiler", "compiler", "mail")[i % 3] + (
                str(i // 3) if i >= 3 else "")
            space = kernel.create_space(f"ultrix:{name}",
                                        SpaceKind.ULTRIX_APP, 1024)
            address = kernel.alloc_shared(1, f"{name}.progress")
            self.progress[name] = AppProgress(name, address)
            self._threads.append(kernel.fork(
                self._app_body(name, address, app_burst_instructions),
                name=name, space=space))

        self.pipeline_items = pipeline_items
        if pipeline_items > 0:
            self._build_pipeline(pipeline_items,
                                 pipeline_stage_instructions,
                                 buffer_capacity)

    def _app_body(self, name: str, address: int, burst: int):
        progress = self.progress[name]

        def body():
            iteration = 0
            while True:
                yield ops.Compute(burst)
                iteration += 1
                progress.iterations = iteration
                yield ops.Write(address, iteration)
        return body

    def _build_pipeline(self, items: int, stage_instructions: int,
                        capacity: int) -> None:
        kernel = self.kernel
        first = BoundedBuffer(kernel, capacity, "pipe0")
        second = BoundedBuffer(kernel, capacity, "pipe1")
        self.pipeline_out_address = kernel.alloc_shared(1, "pipe.out")
        out_address = self.pipeline_out_address

        def awk():
            for item in range(items):
                yield ops.Compute(stage_instructions)
                yield from first.put(item * 3 + 1)
            return items

        def grep():
            for _ in range(items):
                value = yield from first.take()
                yield ops.Compute(stage_instructions)
                yield from second.put(value * 2)
            return items

        def sed():
            total = 0
            for _ in range(items):
                value = yield from second.take()
                yield ops.Compute(stage_instructions)
                total += value
                yield ops.Write(out_address, total)
            return total

        self.pipeline_threads = [
            kernel.fork(awk, name="awk"),
            kernel.fork(grep, name="grep"),
            kernel.fork(sed, name="sed"),
        ]
        self._threads.extend(self.pipeline_threads)

    def expected_pipeline_total(self) -> int:
        """What sed's accumulator must equal when the pipeline drains."""
        return sum((item * 3 + 1) * 2 for item in range(self.pipeline_items))

    def run_pipeline(self, max_cycles: int = 50_000_000) -> int:
        """Run until the pipeline stages finish; return elapsed cycles."""
        if self.pipeline_items == 0:
            raise ConfigurationError("mix was built without a pipeline")
        start = self.kernel.sim.now
        self.kernel.machine.start()
        deadline = start + max_cycles
        while self.kernel.sim.now < deadline:
            if all(t.done for t in self.pipeline_threads):
                return self.kernel.sim.now - start
            self.kernel.sim.run_until(
                min(self.kernel.sim.now + 20_000, deadline))
        raise ConfigurationError("pipeline did not drain in the horizon")
