"""The experimental parallel Modula-2+ compiler of paper §6.

"An experimental version of the Modula-2+ compiler quickly reads in
the source file and then compiles each procedure body in parallel."

Model: a front-end thread reads the source from disk and parses it
(serial), then forks one thread per procedure body (compute-dominated,
each with its own footprint), joins them, and emits the object file.
The serial fraction gives the workload an Amdahl shape: speedup on
more processors saturates — a useful contrast with the embarrassingly
parallel make.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.io.subsystem import IoSubsystem
from repro.topaz import ops
from repro.topaz.kernel import TopazKernel


@dataclass(frozen=True)
class CompilerParams:
    """Shape of one compilation."""

    procedures: int = 12
    parse_instructions: int = 4000
    body_instructions: int = 2500
    emit_instructions: int = 1200
    source_blocks: int = 12
    object_blocks: int = 6

    def __post_init__(self) -> None:
        if self.procedures < 1:
            raise ConfigurationError("a module has at least one procedure")


class ParallelCompiler:
    """One compilation on a kernel + I/O subsystem."""

    def __init__(self, kernel: TopazKernel, io: IoSubsystem,
                 params: Optional[CompilerParams] = None) -> None:
        self.kernel = kernel
        self.io = io
        self.params = params or CompilerParams()
        buffer, buffer_qbus = io.alloc(128 * 8, "compiler buffer")
        self._buffer_qbus = buffer_qbus
        self._main = None

    def _body_thread(self, index: int):
        instructions = self.params.body_instructions + 137 * (index % 5)

        def body():
            yield ops.Compute(instructions)
            return index
        return body

    def _main_thread(self):
        params, io, buffer_qbus = self.params, self.io, self._buffer_qbus
        compiler = self

        def body():
            # Front end: read the source, parse serially.
            yield ops.DeviceCall(io.disk.read_blocks(
                10, min(params.source_blocks, 8), buffer_qbus),
                label="read-source")
            yield ops.Compute(params.parse_instructions)
            # Fan out: one thread per procedure body.
            workers = []
            for index in range(params.procedures):
                worker = yield ops.Fork(compiler._body_thread(index),
                                        name=f"body{index}")
                workers.append(worker)
            for worker in workers:
                yield ops.Join(worker)
            # Back end: emit serially.
            yield ops.Compute(params.emit_instructions)
            yield ops.DeviceCall(io.disk.write_blocks(
                40, min(params.object_blocks, 8), buffer_qbus),
                label="write-object")
            return params.procedures
        return body

    def run(self, max_cycles: int = 80_000_000) -> int:
        """Compile; return elapsed cycles."""
        self._main = self.kernel.fork(self._main_thread(), name="compiler")
        self.io.start()
        start = self.kernel.sim.now
        self.kernel.machine.start()
        deadline = start + max_cycles
        while self.kernel.sim.now < deadline:
            if self._main.done:
                return self.kernel.sim.now - start
            self.kernel.sim.run_until(
                min(self.kernel.sim.now + 20_000, deadline))
        raise ConfigurationError("compilation did not finish in the horizon")
