"""The Topaz Threads exerciser — the program behind Table 2.

Paper §5.3: "The program used in this example is an exerciser for the
Topaz Threads package.  The program forks a number of threads, each of
which then executes and checks the results of Threads package
primitives.  There is a great deal of synchronization and process
migration, since the threads deliberately block and reschedule
themselves."

Each exerciser thread loops over four phases:

1. a short private compute burst;
2. a mutex episode: lock one of a pool of mutexes, bump the counter it
   protects, *check* the counter is sane (the 'checks the results'
   part — the value read must be at least the thread's own
   contribution count), unlock;
3. every few rounds, a condition-variable rendezvous: the thread locks
   the rendezvous mutex and either parks (first arrival) or signals
   the parked partner (second arrival) — forcing genuine blocking;
4. a voluntary reschedule (``YieldCpu``), so threads constantly move
   through the ready queue and across processors.

The exerciser also carries the paper's explanation for its high
reference rate: the instruction mix is lighter than the VAX average
(``thread_base_cycles``) and the CPUs run with the prefetcher enabled
— the two effects that make Table 2's *Actual* columns exceed the
analytic *Expected* columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analytic.queueing import AnalyticParameters, FireflyAnalyticModel
from repro.common.errors import ConfigurationError
from repro.processor.cpu import PrefetchConfig
from repro.topaz import ops
from repro.topaz.kernel import TopazKernel, TopazParams


@dataclass(frozen=True)
class ExerciserParams:
    """Shape of the exerciser run."""

    threads: int = 16
    mutex_pool: int = 8
    rendezvous_pairs: int = 4
    compute_burst: int = 150
    locked_compute: int = 6
    rendezvous_every: int = 6
    thread_base_cycles: float = 13.0   # ~6.5 ticks: light instructions
    prefetch: bool = True
    avoid_migration: bool = True

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ConfigurationError("need at least one thread")
        if self.mutex_pool < 1 or self.rendezvous_pairs < 1:
            raise ConfigurationError("pools must be non-empty")
        if self.rendezvous_every < 1:
            raise ConfigurationError("rendezvous_every must be >= 1")


def _exerciser_thread(kernel: TopazKernel, params: ExerciserParams,
                      tid: int, mutexes, counters, rendezvous):
    """One exerciser thread body (runs forever; measured by horizon)."""
    def body():
        my_bumps = 0
        round_number = 0
        while True:
            round_number += 1
            yield ops.Compute(params.compute_burst)

            # Mutex episode with a result check.
            index = (tid + round_number) % params.mutex_pool
            mutex = mutexes[index]
            yield ops.Lock(mutex)
            yield ops.Compute(params.locked_compute)
            value = yield ops.Read(counters[index])
            yield ops.Write(counters[index], value + 1)
            if index == tid % params.mutex_pool:
                my_bumps += 1
                if value + 1 < my_bumps:
                    raise AssertionError(
                        f"exerciser check failed: counter {index} at "
                        f"{value + 1} below own contribution {my_bumps}")
            yield ops.Unlock(mutex)

            # Rendezvous: first arrival parks, second wakes it.
            if round_number % params.rendezvous_every == 0:
                pair = (tid + round_number) % params.rendezvous_pairs
                guard, condition, flag = rendezvous[pair]
                yield ops.Lock(guard)
                parked = yield ops.Read(flag)
                if parked == 0:
                    yield ops.Write(flag, 1)
                    yield ops.Wait(condition, guard)
                else:
                    yield ops.Write(flag, 0)
                    yield ops.Signal(condition)
                yield ops.Unlock(guard)

            yield ops.YieldCpu()
    return body


def build_exerciser(processors: int,
                    params: Optional[ExerciserParams] = None,
                    seed: int = 1987, **config_overrides) -> TopazKernel:
    """A machine running the Threads exerciser, ready to measure.

    Returns the kernel; call ``kernel.run(warmup, measure)`` for a
    Table 2-style measurement.
    """
    params = params or ExerciserParams()
    topaz_params = TopazParams(
        avoid_migration=params.avoid_migration,
        affinity_window=8,
        thread_base_cycles=params.thread_base_cycles,
        thread_data_words=256,
        thread_loop_iterations=14.0,
        thread_sweep_fraction=0.08,
        context_switch_instructions=30)
    prefetch = PrefetchConfig(enabled=params.prefetch)
    kernel = TopazKernel.build(
        processors=processors,
        threads_hint=params.threads + 4,
        params=topaz_params,
        prefetch=prefetch,
        seed=seed,
        **config_overrides)

    mutexes = [kernel.mutex(f"pool{i}") for i in range(params.mutex_pool)]
    counters = [kernel.alloc_shared(1, f"counter{i}")
                for i in range(params.mutex_pool)]
    rendezvous = []
    for i in range(params.rendezvous_pairs):
        guard = kernel.mutex(f"rv_guard{i}")
        condition = kernel.condition(f"rv_cond{i}")
        flag = kernel.alloc_shared(1, f"rv_flag{i}")
        rendezvous.append((guard, condition, flag))

    for tid in range(params.threads):
        body = _exerciser_thread(kernel, params, tid, mutexes, counters,
                                 rendezvous)
        kernel.fork(body, name=f"exerciser{tid}")
    return kernel


def exerciser_expectations(processors: int,
                           miss_rate: float = 0.2,
                           dirty_fraction: float = 0.25) -> Dict[str, float]:
    """Table 2's *Expected* columns, computed the paper's way.

    One CPU: the bus is private, so a miss adds one tick and a dirty
    victim two ("a Firefly cache that adds one tick to every operation
    that misses, plus two ticks for every dirty victim write"), giving
    ~850 K refs/sec.  Multiple CPUs: the analytic model's TPI at the
    load NP processors produce (~752 K refs/sec per CPU at five).
    """
    analytic = FireflyAnalyticModel(AnalyticParameters(
        miss_rate=miss_rate, dirty_fraction=dirty_fraction))
    mix = analytic.params.mix
    if processors == 1:
        tpi = (analytic.params.base_tpi
               + mix.total * miss_rate * (1.0 + 2.0 * dirty_fraction))
        load = 0.0
    else:
        point = analytic.operating_point(processors)
        tpi, load = point.tpi, point.load
    ticks_per_second = 5e6  # 200 ns ticks
    instr_rate = ticks_per_second / tpi
    total = mix.total * instr_rate
    reads = (mix.instruction_reads + mix.data_reads) * instr_rate
    writes = mix.data_writes * instr_rate
    return {
        "reads_krate": reads / 1e3,
        "writes_krate": writes / 1e3,
        "total_krate": total / 1e3,
        "tpi": tpi,
        "load": load,
    }
