"""Deterministic parallel trial executor.

``firefly-sim bench``, ``firefly-sim chaos`` and ``firefly-sim sweep``
all reduce to the same shape of work: an ordered list of *(scenario,
seed)* trials, each of which builds its entire simulated world from its
seed and returns plain data.  Trials share no mutable state — every
RNG stream is derived from the trial's own seed inside the trial — so
they can run in worker processes without changing a single simulated
bit.  This module provides that fan-out:

- :func:`run_ordered` — execute a list of picklable specs through a
  module-level worker function, either in-process (``jobs <= 1``) or
  on a :class:`~concurrent.futures.ProcessPoolExecutor`, returning
  results **in spec order** regardless of completion order.  With the
  same specs, ``jobs=N`` and ``jobs=1`` produce identical result
  lists (wall-clock timing fields aside, which are measurements of the
  host, not of the simulation).
- worker functions for the three consumers (:func:`bench_trial`,
  :func:`chaos_scenario`, :func:`sweep_point`), all module-level so
  they pickle by reference.
- :func:`run_sweep` — the ``firefly-sim sweep`` document builder: a
  (processor-count x seed) grid of machine runs with purely simulated
  metrics, byte-identical JSON at any job count.

Failure contract: a trial that raises in a worker is reported as a
single :class:`TrialFailure` naming the failing *(scenario, seed)* —
the child's traceback is summarised, never dumped raw — and a worker
process that dies outright (killed, segfault) surfaces the same way
instead of hanging the parent.  Remaining queued trials are cancelled,
and a ``KeyboardInterrupt`` in the parent terminates every worker
process before re-raising — Ctrl-C never leaks simulating workers.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, SimulationError

SWEEP_SCHEMA = "firefly-sweep/1"

#: Default (warmup, measure) cycles for one sweep point.
SWEEP_WARMUP = 20_000
SWEEP_MEASURE = 60_000


class TrialFailure(SimulationError):
    """One trial failed inside a worker; names the (scenario, seed)."""

    def __init__(self, label: str, detail: str) -> None:
        super().__init__(f"trial {label} failed: {detail}")
        self.label = label
        self.detail = detail


def _guarded(worker: Callable, spec) -> Tuple[str, object]:
    """Run one trial in the child, tagging the outcome.

    Exceptions are flattened to a string in the child rather than
    re-raised: a pickled exception that fails to unpickle in the
    parent (custom ``__init__`` signatures, unpicklable payloads)
    would otherwise break the pool and lose the error entirely.
    """
    try:
        return ("ok", worker(spec))
    except Exception as exc:  # noqa: BLE001 - summarised for the parent
        return ("error", f"{type(exc).__name__}: {exc}")


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Kill the pool's worker processes outright.

    Used on KeyboardInterrupt only: ``shutdown(cancel_futures=True)``
    cancels *queued* work but lets already-running trials finish, so a
    Ctrl-C during a long fan-out would leave workers simulating for
    minutes after the user asked to stop.  The process handles are a
    private attribute of the executor; degrade to a plain shutdown if a
    future Python hides them.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except OSError:
            pass


def run_ordered(specs: Sequence, worker: Callable, jobs: int = 1,
                describe: Callable[[object], str] = str,
                on_result: Optional[Callable[[object, object], None]] = None
                ) -> List:
    """Run ``worker(spec)`` for every spec; results in spec order.

    ``worker`` must be a module-level function and each spec a small
    picklable value that carries *everything* the trial needs (names
    and seeds, not live objects).  ``jobs <= 1`` runs in-process with
    identical semantics — the parallel path is pure fan-out, never a
    behaviour switch.

    ``on_result(spec, result)`` is invoked in **spec order** as each
    trial's result is collected, on both the serial and parallel paths.
    Campaign resume rides on this: every result the callback saw is
    durable even if a later trial fails, and spec-order delivery keeps
    append-only stores deterministic at any job count.

    A ``KeyboardInterrupt`` during a fan-out terminates the worker
    processes and re-raises — no leaked workers, no swallowed Ctrl-C.
    """
    if jobs is None:
        jobs = 1
    if jobs <= 1 or len(specs) <= 1:
        results = []
        for spec in specs:
            tag, payload = _guarded(worker, spec)
            if tag != "ok":
                raise TrialFailure(describe(spec), payload)
            if on_result is not None:
                on_result(spec, payload)
            results.append(payload)
        return results
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(specs)))
    try:
        futures = [pool.submit(_guarded, worker, spec) for spec in specs]
        results = []
        for spec, future in zip(specs, futures):
            try:
                tag, payload = future.result()
            except BrokenProcessPool:
                raise TrialFailure(
                    describe(spec),
                    "worker process died before returning a result") from None
            except Exception as exc:  # transport failures, not trial errors
                raise TrialFailure(
                    describe(spec),
                    f"{type(exc).__name__}: {exc}") from None
            if tag != "ok":
                raise TrialFailure(describe(spec), payload)
            if on_result is not None:
                on_result(spec, payload)
            results.append(payload)
        return results
    except KeyboardInterrupt:
        # Raised outside future.result() (e.g. between collections):
        # same contract — tear the workers down before propagating.
        _terminate_workers(pool)
        raise
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


# ---------------------------------------------------------------------------
# workers (module-level: they pickle by reference into worker processes)


def bench_trial(spec: Tuple) -> Dict:
    """One seeded bench trial: ``(scenario_name, quick, seed[, engine])``.

    Returns the trial record plus the simulated metrics; the caller
    keeps metrics only for trial 0, matching the serial path.  Wall
    time is measured inside the worker, exactly as the serial path
    times the bare runner call.

    The optional fourth element pins the event engine inside this
    worker process (the parent's ambient default does not cross the
    process boundary); three-element specs — the campaign ledger's
    pinned shape — keep the worker's own default, which is the same
    simulated result by the engine-equivalence contract.
    """
    from repro.common.events import set_default_engine
    from repro.observatory import bench

    name, quick, seed = spec[:3]
    engine = spec[3] if len(spec) > 3 else None
    scenario = next(s for s in bench.SCENARIOS if s.name == name)
    horizon = scenario.horizon(quick)
    previous = set_default_engine(engine) if engine else None
    try:
        start = bench._now()
        cycles, metrics = scenario.runner(scenario, horizon, seed)
        elapsed = bench._now() - start
    finally:
        if previous is not None:
            set_default_engine(previous)
    return {
        "seed": seed,
        "cycles": cycles,
        "wall_seconds": elapsed,
        "ticks_per_second": cycles / elapsed if elapsed > 0 else 0.0,
        "metrics": metrics,
    }


def chaos_scenario(spec: Tuple[str, bool, int]):
    """One chaos scenario: ``(scenario_name, quick, seed)``.

    Returns the :class:`~repro.faults.chaos.ScenarioOutcome` — plain
    dataclasses all the way down, so it crosses the process boundary
    intact.  Imported lazily; :mod:`repro.faults.chaos` imports
    observatory modules.
    """
    from repro.faults import chaos

    name, quick, seed = spec
    scenario = next(s for s in chaos.CHAOS_SCENARIOS if s.name == name)
    horizon = scenario.horizon(quick)
    return scenario.runner(scenario, horizon, seed)


def serve_scenario(spec: Tuple[str, bool, int]):
    """One serving scenario: ``(scenario_name, quick, seed)``.

    Returns the :class:`~repro.serving.engine.ServeOutcome` — plain
    dataclasses and dicts, so it crosses the process boundary intact.
    """
    from repro.serving import engine

    name, quick, seed = spec
    scenario = next(s for s in engine.SERVE_SCENARIOS if s.name == name)
    horizon = scenario.horizon(quick)
    return scenario.runner(scenario, horizon, seed)


def sweep_point(spec: Tuple[int, str, str, int, int, int]) -> Dict:
    """One sweep grid point:
    ``(processors, protocol, generation, seed, warmup, measure)``.
    """
    from repro.system import FireflyConfig, FireflyMachine, Generation

    processors, protocol, generation, seed, warmup, measure = spec
    machine = FireflyMachine(FireflyConfig(
        processors=processors, protocol=protocol,
        generation=Generation(generation), seed=seed))
    metrics = machine.run(warmup_cycles=warmup, measure_cycles=measure)
    return {
        "processors": processors,
        "seed": seed,
        "cycles": machine.sim.now,
        "bus_load": metrics.bus_load,
        "mean_tpi": metrics.mean_tpi,
        "mean_miss_rate": metrics.mean_miss_rate,
        "mean_cpu_krate": metrics.mean_cpu_krate,
        "dirty_fraction": metrics.dirty_fraction,
    }


# ---------------------------------------------------------------------------
# the sweep document


def run_sweep(processor_counts: Sequence[int], seeds: Sequence[int],
              protocol: str = "firefly", generation: str = "microvax",
              warmup: int = SWEEP_WARMUP, measure: int = SWEEP_MEASURE,
              jobs: int = 1,
              progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the (processors x seed) grid and return the sweep document.

    The document contains only simulated quantities — no wall-clock
    fields — so serialising it with sorted keys yields byte-identical
    JSON for any ``jobs`` value.
    """
    if not processor_counts:
        raise ConfigurationError("sweep needs at least one processor count")
    if not seeds:
        raise ConfigurationError("sweep needs at least one seed")
    for count in processor_counts:
        if count < 1:
            raise ConfigurationError(f"processor count must be >= 1, "
                                     f"got {count}")
    specs = [(processors, protocol, generation, seed, warmup, measure)
             for processors in processor_counts for seed in seeds]
    if progress is not None:
        progress(f"sweep: {len(specs)} point(s) "
                 f"({len(processor_counts)} processor count(s) x "
                 f"{len(seeds)} seed(s), jobs={max(1, jobs)})")
    points = run_ordered(specs, sweep_point, jobs=jobs,
                         describe=_describe_sweep_spec)
    return {
        "schema": SWEEP_SCHEMA,
        "protocol": protocol,
        "generation": generation,
        "warmup_cycles": warmup,
        "measure_cycles": measure,
        "processor_counts": list(processor_counts),
        "seeds": list(seeds),
        "points": points,
    }


def _describe_sweep_spec(spec) -> str:
    processors, protocol, _generation, seed, _warmup, _measure = spec
    return f"(sweep np={processors} protocol={protocol}, seed {seed})"


def describe_bench_spec(spec) -> str:
    name, _quick, seed = spec[:3]
    if len(spec) > 3 and spec[3]:
        return f"({name}, seed {seed}, engine {spec[3]})"
    return f"({name}, seed {seed})"


def describe_chaos_spec(spec) -> str:
    name, _quick, seed = spec
    return f"({name}, seed {seed})"


def describe_serve_spec(spec) -> str:
    name, _quick, seed = spec
    return f"({name}, seed {seed})"
