"""Transaction-level span tracing with streaming percentile analytics.

The paper's Table 2 shows *averages*; what the authors read off their
logic analyser between those averages were *distributions* — how long
an individual MBus transaction queued for the arbiter, how long a miss
stalled a processor, which stage of the miss dominated.  This module
rebuilds that view from the telemetry stream:

- every ``bus.op`` event becomes a :class:`BusSpan` with a causal
  decomposition ``request enqueue → arbitration wait → bus cycles``
  (plus the supply source: memory or cache-to-cache, and the victim
  flag);
- every ``cache.transition`` duration event (a miss or a write-through
  episode) becomes a :class:`CacheSpan` whose constituent bus
  operations are re-attributed to it, splitting its stall time into
  ``arb_wait`` / ``transfer`` / ``other`` — the critical-path
  attribution for cache misses;
- all latencies stream into bounded-bucket
  :class:`~repro.common.stats.Histogram` objects (p50/p95/p99, exact
  mean and max, O(buckets) memory), per span kind and per CPU.

The tracer is a hub *subscriber*: it costs nothing unless constructed,
and the instrumented components keep their one-branch disabled path
(see ``docs/OBSERVATORY.md`` for the span model and its one
approximation around concurrent DMA).

>>> from repro.common.events import Simulator
>>> from repro.telemetry.probe import TelemetryHub
>>> hub = TelemetryHub(Simulator())
>>> tracer = SpanTracer(hub)
>>> probe = hub.probe("bus")
>>> probe.complete("bus.op", "bus", 10, 4, op="mread", initiator=1,
...                wait=6, cache_supplied=False, victim=False)
>>> tracer.kind_stats["bus.mread"].total.count
1
>>> tracer.kind_stats["bus.mread"].wait.mean
6.0
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.stats import Histogram
from repro.telemetry.probe import COMPLETE, TelemetryEvent, TelemetryHub

#: Histogram bucket bounds for span latencies (cycles).  Bus waits are
#: usually < 32 cycles; a pathological convoy on a saturated bus can
#: reach thousands, hence the wide tail.
LATENCY_BOUNDS = (0, 1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128,
                  192, 256, 384, 512, 1024, 2048, 4096)

#: Critical-path stage names, in report order.
STAGES = ("arb_wait", "transfer", "other")


class BusSpan:
    """One bus transaction as a latency span.

    ``request`` is the enqueue instant, ``start`` the grant instant;
    ``wait + transfer`` is exactly the initiator's end-to-end latency
    (request to release).
    """

    __slots__ = ("kind", "initiator", "request", "start", "wait",
                 "transfer", "supply", "victim")

    def __init__(self, kind: str, initiator: int, start: int, wait: int,
                 transfer: int, supply: str, victim: bool) -> None:
        self.kind = kind
        self.initiator = initiator
        self.request = start - wait
        self.start = start
        self.wait = wait
        self.transfer = transfer
        self.supply = supply
        self.victim = victim

    @property
    def end(self) -> int:
        return self.start + self.transfer

    @property
    def total(self) -> int:
        """End-to-end latency; equals ``wait + transfer`` by construction."""
        return self.wait + self.transfer

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<BusSpan {self.kind} cpu{self.initiator} "
                f"@{self.request} wait={self.wait}+{self.transfer}>")


class CacheSpan:
    """One cache episode (miss or write-through) with stage attribution.

    ``stages`` maps :data:`STAGES` to cycles; the three entries sum
    exactly to ``duration`` (``other`` is whatever the constituent bus
    operations don't account for — protocol overhead between them).
    """

    __slots__ = ("kind", "cpu", "start", "duration", "stages", "ops",
                 "supplies")

    def __init__(self, kind: str, cpu: int, start: int, duration: int,
                 ops: List[BusSpan]) -> None:
        self.kind = kind
        self.cpu = cpu
        self.start = start
        self.duration = duration
        self.ops = len(ops)
        wait = sum(op.wait for op in ops)
        transfer = sum(op.transfer for op in ops)
        self.stages = {"arb_wait": wait, "transfer": transfer,
                       "other": duration - wait - transfer}
        self.supplies = tuple(op.supply for op in ops)

    @property
    def dominant_stage(self) -> str:
        """The stage contributing the most cycles (ties: report order)."""
        return max(STAGES, key=lambda s: self.stages[s])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = " ".join(f"{k}={v}" for k, v in self.stages.items())
        return f"<CacheSpan {self.kind} cpu{self.cpu} {self.duration}cy {inner}>"


class SpanKindStats:
    """Streaming percentile histograms for one span kind."""

    __slots__ = ("kind", "total", "wait", "transfer", "supply_counts")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.total = Histogram(f"{kind}.total", LATENCY_BOUNDS)
        self.wait = Histogram(f"{kind}.wait", LATENCY_BOUNDS)
        self.transfer = Histogram(f"{kind}.transfer", LATENCY_BOUNDS)
        self.supply_counts: Dict[str, int] = {}

    def record(self, wait: int, transfer: int, supply: str) -> None:
        self.total.record(wait + transfer)
        self.wait.record(wait)
        self.transfer.record(transfer)
        self.supply_counts[supply] = self.supply_counts.get(supply, 0) + 1

    def to_dict(self) -> Dict:
        return {"total": self.total.to_dict(), "wait": self.wait.to_dict(),
                "transfer": self.transfer.to_dict(),
                "supply": dict(self.supply_counts)}


class CpuSpanStats:
    """Per-CPU latency distributions plus critical-path attribution."""

    __slots__ = ("cpu", "bus_total", "miss_total", "stage_cycles",
                 "dominant_counts", "spans")

    def __init__(self, cpu: int) -> None:
        self.cpu = cpu
        self.bus_total = Histogram(f"cpu{cpu}.bus_op", LATENCY_BOUNDS)
        self.miss_total = Histogram(f"cpu{cpu}.miss", LATENCY_BOUNDS)
        self.stage_cycles = {stage: 0 for stage in STAGES}
        self.dominant_counts = {stage: 0 for stage in STAGES}
        self.spans = 0

    def record_bus(self, span: BusSpan) -> None:
        self.bus_total.record(span.total)

    def record_cache(self, span: CacheSpan) -> None:
        self.spans += 1
        self.miss_total.record(span.duration)
        for stage in STAGES:
            self.stage_cycles[stage] += span.stages[stage]
        self.dominant_counts[span.dominant_stage] += 1

    def stage_fractions(self) -> Dict[str, float]:
        """Fraction of total stall cycles attributed to each stage."""
        total = sum(self.stage_cycles.values())
        if total <= 0:
            return {stage: 0.0 for stage in STAGES}
        return {stage: self.stage_cycles[stage] / total for stage in STAGES}

    def to_dict(self) -> Dict:
        return {"bus_op": self.bus_total.to_dict(),
                "miss": self.miss_total.to_dict(),
                "stage_cycles": dict(self.stage_cycles),
                "stage_fractions": self.stage_fractions(),
                "dominant_counts": dict(self.dominant_counts)}


class SpanTracer:
    """Builds spans from a live telemetry hub and aggregates percentiles.

    Subscribe-and-forget: construct with a hub whose probes are active,
    run the simulation, then read ``kind_stats`` / ``cpu_stats`` or
    call :meth:`summary` / :meth:`render`.  Call :meth:`close` to
    detach (e.g. before a second differently-configured tracer).

    ``keep_spans`` retains the individual :class:`CacheSpan` objects
    (tests and deep-dives); off by default so long runs stay O(1).
    """

    #: Pending unmatched bus ops retained per initiator.  Write-through
    #: traffic produces bus ops with no enclosing cache span; the bound
    #: keeps such traffic from accumulating.
    MAX_PENDING = 64

    def __init__(self, hub: TelemetryHub, keep_spans: bool = False) -> None:
        self.hub = hub
        self.keep_spans = keep_spans
        self.kind_stats: Dict[str, SpanKindStats] = {}
        self.cpu_stats: Dict[int, CpuSpanStats] = {}
        self.cache_spans: List[CacheSpan] = []
        self.unattributed_ops = 0
        self._pending: Dict[int, Deque[BusSpan]] = {}
        hub.subscribe(self._on_bus_op, prefix="bus.op")
        hub.subscribe(self._on_cache_transition, prefix="cache.transition")

    def close(self) -> None:
        """Detach from the hub (idempotent)."""
        self.hub.unsubscribe(self._on_bus_op)
        self.hub.unsubscribe(self._on_cache_transition)

    # -- event handlers -------------------------------------------------

    def _on_bus_op(self, event: TelemetryEvent) -> None:
        args = dict(event.args)
        supply = ("cache" if args.get("cache_supplied")
                  else "memory" if str(args.get("op", "")).startswith("mread")
                  else "none")
        span = BusSpan(kind=f"bus.{args.get('op', '?')}",
                       initiator=int(args.get("initiator", -1)),
                       start=event.time, wait=int(args.get("wait", 0)),
                       transfer=event.duration, supply=supply,
                       victim=bool(args.get("victim", False)))
        self._kind(span.kind).record(span.wait, span.transfer, supply)
        self._cpu(span.initiator).record_bus(span)
        pending = self._pending.setdefault(
            span.initiator, deque(maxlen=self.MAX_PENDING))
        pending.append(span)

    def _on_cache_transition(self, event: TelemetryEvent) -> None:
        if event.phase != COMPLETE:
            return  # snoop-side instants carry no latency
        args = dict(event.args)
        stimulus = str(args.get("stimulus", ""))
        cpu = self._track_cpu(event.track)
        if cpu is None:
            return
        start, end = event.time, event.time + event.duration
        ops, leftovers = [], []
        for op in self._pending.get(cpu, ()):
            if op.request >= start and op.end <= end:
                ops.append(op)
            elif op.end > end:  # belongs to something later
                leftovers.append(op)
        if cpu in self._pending:
            self.unattributed_ops += (len(self._pending[cpu]) - len(ops)
                                      - len(leftovers))
            self._pending[cpu] = deque(leftovers, maxlen=self.MAX_PENDING)
        span = CacheSpan(kind=f"cache.{stimulus}", cpu=cpu, start=start,
                         duration=event.duration, ops=ops)
        kind = self._kind(span.kind)
        kind.total.record(span.duration)
        kind.wait.record(span.stages["arb_wait"])
        kind.transfer.record(span.stages["transfer"])
        self._cpu(cpu).record_cache(span)
        if self.keep_spans:
            self.cache_spans.append(span)

    # -- registries -----------------------------------------------------

    def _kind(self, kind: str) -> SpanKindStats:
        stats = self.kind_stats.get(kind)
        if stats is None:
            stats = self.kind_stats[kind] = SpanKindStats(kind)
        return stats

    def _cpu(self, cpu: int) -> CpuSpanStats:
        stats = self.cpu_stats.get(cpu)
        if stats is None:
            stats = self.cpu_stats[cpu] = CpuSpanStats(cpu)
        return stats

    @staticmethod
    def _track_cpu(track: str) -> Optional[int]:
        if track.startswith("cache") and track[5:].isdigit():
            return int(track[5:])
        return None

    # -- reporting ------------------------------------------------------

    def summary(self) -> Dict:
        """JSON-ready snapshot of every histogram and attribution."""
        return {
            "kinds": {k: s.to_dict()
                      for k, s in sorted(self.kind_stats.items())},
            "cpus": {str(c): s.to_dict()
                     for c, s in sorted(self.cpu_stats.items())},
            "unattributed_ops": self.unattributed_ops,
        }

    def render(self) -> str:
        """Percentile tables in the paper's text-table style."""
        from repro.reporting import Column, TextTable

        lines = ["span latencies (cycles)"]
        table = TextTable([
            Column("kind", align_left=True), Column("n", "d"),
            Column("p50", "d"), Column("p95", "d"), Column("p99", "d"),
            Column("max", "d"), Column("mean", ".1f"),
            Column("wait p95", "d")])
        for kind, stats in sorted(self.kind_stats.items()):
            hist = stats.total
            table.add_row(kind, hist.count, hist.p50, hist.p95, hist.p99,
                          hist.max, hist.mean, stats.wait.p95)
        lines.append(table.render())

        if any(s.spans for s in self.cpu_stats.values()):
            lines.append("")
            lines.append("miss critical path (stall-cycle attribution)")
            attribution = TextTable([
                Column("cpu", "d"), Column("misses", "d"),
                Column("arb_wait", ".0%"), Column("transfer", ".0%"),
                Column("other", ".0%"),
                Column("dominant", align_left=True)])
            for cpu, stats in sorted(self.cpu_stats.items()):
                if not stats.spans:
                    continue
                fractions = stats.stage_fractions()
                dominant = max(STAGES,
                               key=lambda s: stats.dominant_counts[s])
                attribution.add_row(cpu, stats.spans,
                                    fractions["arb_wait"],
                                    fractions["transfer"],
                                    fractions["other"], dominant)
            lines.append(attribution.render())
        return "\n".join(lines)


def trace_spans(subject, keep_spans: bool = False
                ) -> Tuple[TelemetryHub, SpanTracer]:
    """Attach a hub + tracer to a machine or Topaz kernel in one call.

    Events are *not* buffered in the hub (``max_events=0``): the tracer
    consumes the stream, so arbitrarily long runs stay bounded.
    """
    from repro.telemetry.instrument import attach_kernel, attach_machine

    machine = getattr(subject, "machine", subject)
    hub = TelemetryHub(machine.sim, max_events=0)
    if subject is machine:
        attach_machine(hub, machine)
    else:
        attach_kernel(hub, subject)
    return hub, SpanTracer(hub, keep_spans=keep_spans)
