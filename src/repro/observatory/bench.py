"""The continuous benchmark harness behind ``firefly-sim bench``.

Runs a pinned suite of canonical scenarios — the Table 2 exerciser at
1 and 5 CPUs, a Table 1 synthetic sweep, and a protocol comparison —
over repeated seeded trials, measuring both *simulated* metrics (bus
load, TPI, miss rate) and *host* throughput (simulated cycles per wall
second).  Results land in ``BENCH_<n>.json`` at the repo root so every
future PR can answer "did the simulator get slower?" with
:func:`compare_bench`, a noise-aware regression detector
(median-of-trials, margin widened by the observed trial spread).

The harness also guards the observatory's own cost: the ``overhead``
block times a scenario with telemetry probes attached-then-detached
against a plain baseline, verifying that *disabled* span tracing stays
within a small wall-clock budget (the ``probe.active`` dead-branch
contract of :mod:`repro.telemetry`).

Wall-clock timing is deliberate here and nowhere else in the package;
the simulation-safety linter exempts the marked lines.
"""

from __future__ import annotations

import json
import platform
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Callable, Dict, List, Optional, Tuple

from repro.analytic.queueing import AnalyticParameters, FireflyAnalyticModel
from repro.common.errors import ConfigurationError
from repro.common.events import Simulator, default_engine, set_default_engine
from repro.common.provenance import provenance_stamp
from repro.common.rng import RandomStream
from repro.system import FireflyConfig, FireflyMachine
from repro.telemetry.probe import NULL_PROBE, TelemetryHub
from repro.telemetry.instrument import attach_kernel
from repro.workloads.threads_exerciser import ExerciserParams, build_exerciser

BENCH_SCHEMA = "firefly-bench/1"
BENCH_PATTERN = re.compile(r"^BENCH_(\d{4})\.json$")

#: Seeds for repeated trials, in order; trial i uses TRIAL_SEEDS[i].
TRIAL_SEEDS = (1987, 1988, 1989, 1990, 1991)

#: Wall-clock budget for disabled-tracing overhead (fraction over baseline).
OVERHEAD_BUDGET = 0.02

#: Wall-clock budget for the always-on flight recorder (fraction over
#: baseline).  The recorder keeps only the low-rate categories live, so
#: it shares the 2% envelope of the disabled path.
RECORDER_BUDGET = 0.02

#: Default regression threshold for :func:`compare_bench`.
DEFAULT_THRESHOLD = 0.20


def _now() -> float:
    return time.perf_counter()  # lint: allow(V102)


# ---------------------------------------------------------------------------
# pinned scenarios


@dataclass(frozen=True)
class Horizon:
    """Warm-up and measurement cycles for one scenario run."""

    warmup: int
    measure: int

    @property
    def total(self) -> int:
        return self.warmup + self.measure


@dataclass(frozen=True)
class Scenario:
    """One pinned benchmark scenario.

    ``runner(horizon, seed)`` performs the simulation and returns
    ``(simulated_cycles, metrics)`` where metrics is a flat dict of
    JSON-safe simulated measurements.
    """

    name: str
    description: str
    full: Horizon
    quick: Horizon
    runner: Callable[["Scenario", Horizon, int], Tuple[int, Dict]]

    def horizon(self, quick: bool) -> Horizon:
        return self.quick if quick else self.full


def _run_exerciser(processors: int, threads: int, horizon: Horizon,
                   seed: int) -> Tuple[int, Dict]:
    kernel = build_exerciser(processors, ExerciserParams(threads=threads),
                             seed=seed)
    metrics = kernel.run(warmup_cycles=horizon.warmup,
                         measure_cycles=horizon.measure)
    return kernel.machine.sim.now, {
        "bus_load": metrics.bus_load,
        "mean_tpi": metrics.mean_tpi,
        "mean_miss_rate": metrics.mean_miss_rate,
        "mean_cpu_krate": metrics.mean_cpu_krate,
        "dirty_fraction": metrics.dirty_fraction,
    }


def _exerciser_runner(processors: int, threads: int):
    def run(scenario: Scenario, horizon: Horizon, seed: int):
        return _run_exerciser(processors, threads, horizon, seed)
    return run


def _table1_runner(scenario: Scenario, horizon: Horizon,
                   seed: int) -> Tuple[int, Dict]:
    """Synthetic machines at the Table 1 operating points.

    Each processor count runs the calibrated synthetic workload; the
    recorded residual is measured bus load minus the analytic
    prediction at the paper's parameters — the simulator-side version
    of the Table 1 column.
    """
    counts = (2, 4) if horizon is scenario.quick else (2, 4, 6)
    model = FireflyAnalyticModel(AnalyticParameters())
    cycles = 0
    metrics: Dict = {"processor_counts": list(counts)}
    for processors in counts:
        machine = FireflyMachine(FireflyConfig(processors=processors,
                                               seed=seed))
        result = machine.run(warmup_cycles=horizon.warmup,
                             measure_cycles=horizon.measure)
        cycles += machine.sim.now
        predicted = model.load_for_processors(processors)
        metrics[f"np{processors}.bus_load"] = result.bus_load
        metrics[f"np{processors}.load_residual"] = (result.bus_load
                                                    - predicted)
    return cycles, metrics


def _protocol_runner(scenario: Scenario, horizon: Horizon,
                     seed: int) -> Tuple[int, Dict]:
    """Firefly vs write-through on the same 4-CPU synthetic workload."""
    cycles = 0
    metrics: Dict = {}
    for protocol in ("firefly", "write-through"):
        machine = FireflyMachine(FireflyConfig(processors=4,
                                               protocol=protocol,
                                               seed=seed))
        result = machine.run(warmup_cycles=horizon.warmup,
                             measure_cycles=horizon.measure)
        cycles += machine.sim.now
        key = protocol.replace("-", "_")
        metrics[f"{key}.bus_load"] = result.bus_load
        metrics[f"{key}.mean_tpi"] = result.mean_tpi
    if metrics["write_through.bus_load"] > 0:
        metrics["load_ratio"] = (metrics["firefly.bus_load"]
                                 / metrics["write_through.bus_load"])
    return cycles, metrics


def _chaos_smoke_runner(scenario: Scenario, horizon: Horizon,
                        seed: int) -> Tuple[int, Dict]:
    """A two-scenario chaos campaign, timed like any other benchmark.

    Keeps fault-injection on the continuous-benchmark radar: a
    regression in recovery machinery (retry storms, audit cost, offline
    flush) shows up as a throughput drop here before anyone runs the
    full ``firefly-sim chaos`` suite.  Horizons are owned by the chaos
    scenarios themselves; this runner only picks quick vs full.

    Imported lazily: ``repro.faults.chaos`` imports observatory
    modules, so a module-level import would be circular.
    """
    from repro.faults.chaos import run_campaign

    report = run_campaign(seed=seed, quick=horizon is scenario.quick,
                          scenarios=["bus-parity", "cpu-offline"])
    counts = report.fault_counts()
    metrics: Dict = {
        "scenarios_ok": sum(1 for o in report.outcomes if o.ok),
        "scenarios_run": len(report.outcomes),
        "faults_injected": counts["injected"],
        "faults_detected": counts["detected"],
        "faults_recovered": counts["recovered"],
    }
    for outcome in report.outcomes:
        prefix = outcome.name.replace("-", "_")
        for key in ("degradation.tpi_pct", "degradation.bus_load_pct"):
            if key in outcome.metrics:
                metrics[f"{prefix}.{key}"] = outcome.metrics[key]
    return report.total_cycles, metrics


def _serve_smoke_runner(scenario: Scenario, horizon: Horizon,
                        seed: int) -> Tuple[int, Dict]:
    """A two-scenario serving campaign, timed like any other benchmark.

    Keeps the resilience layer on the continuous-benchmark radar: a
    regression in the serving path (retry bookkeeping, breaker checks,
    hedge forking) shows up as a throughput drop here before anyone
    runs the full ``firefly-sim serve`` suite.  Horizons are owned by
    the serve scenarios themselves; this runner only picks quick vs
    full.

    Imported lazily: ``repro.serving.engine`` imports observatory
    modules, so a module-level import would be circular.
    """
    from repro.serving.engine import run_serve_campaign

    report = run_serve_campaign(
        seed=seed, quick=horizon is scenario.quick,
        scenarios=["steady-poisson", "latency-under-chaos"])
    totals = report.totals()
    metrics: Dict = {
        "scenarios_ok": sum(1 for o in report.outcomes if o.ok),
        "scenarios_run": len(report.outcomes),
        "calls": totals["calls"],
        "calls_ok": totals["ok"],
        "shed": totals["shed"],
        "retries": totals["retries"],
    }
    for outcome in report.outcomes:
        prefix = outcome.name.replace("-", "_")
        for key, value in outcome.degradation.items():
            metrics[f"{prefix}.degradation.{key}"] = value
    cycles = sum(outcome.total_cycles for outcome in report.outcomes)
    return cycles, metrics


def _core_microbench_runner(scenario: Scenario, horizon: Horizon,
                            seed: int) -> Tuple[int, Dict]:
    """Scheduler-only microbenchmark: the event core with no models.

    Nothing here touches caches, buses or telemetry — the run is pure
    kernel traffic shaped like the models generate it: a dense
    population of small fixed-delay tickers (the dominant event class),
    priority-arbitrated resource contention (the MBus pattern), and a
    handful of far-future sleepers that force the wheel's overflow
    path.  Its ticks/s therefore isolates the engine itself, which is
    exactly what the wheel-vs-heap comparison needs; its metrics
    (events scheduled, grants, queue waits) are engine-independent, so
    any drift between engines fails the equivalence tests.
    """
    sim = Simulator()
    rng = RandomStream(seed, "core.microbench")
    delays = (1, 2, 3, 5, 8, 13, 21, 34)

    def ticker(steps):
        while True:
            for step in steps:
                yield sim.timeout(step)

    def contender(resource, priority, gap, cell):
        # cell[0] is this very Process, filled in right after
        # sim.process() returns — release() must name the holder.
        while True:
            yield resource.acquire(priority=priority)
            yield sim.timeout(2)
            resource.release(cell[0])
            yield sim.timeout(gap)

    def sleeper(period):
        while True:
            yield sim.timeout(period)

    for i in range(256):
        steps = tuple(rng.choice(delays) for _ in range(4))
        sim.process(ticker(steps), name=f"tick{i}")
    resources = [sim.resource(f"res{r}") for r in range(4)]
    for i in range(64):
        cell: List = []
        gen = contender(resources[i % 4], i & 7, 1 + (i & 3), cell)
        cell.append(sim.process(gen, name=f"cont{i}"))
    for i in range(8):
        sim.process(sleeper(2000 + 500 * i), name=f"sleep{i}")
    sim.run_until(horizon.total)
    metrics: Dict = {
        "events_scheduled": sim._seq,
        "grants": sum(r.grants for r in resources),
        "total_wait": sum(r.total_wait for r in resources),
        "live_processes": len(list(sim.blocked_processes())),
    }
    return sim.now, metrics


def _vector_stat_runner(scenario: Scenario, horizon: Horizon,
                        seed: int) -> Tuple[int, Dict]:
    """The vectorized statistical mode at Table 1 processor counts.

    ``horizon.measure`` is the per-CPU instruction budget; the reported
    cycles are the simulated ticks the statistics cover (instructions x
    TPI), making ticks/s directly comparable with the coroutine
    scenarios it replaces for pure (M, D, S) runs.  Imported lazily:
    the vectorized mode lives in :mod:`repro.trace`, which benches
    must not pay for unless this scenario is selected.
    """
    from repro.trace.vectorized import run_vectorized

    counts = (2, 4) if horizon is scenario.quick else (2, 4, 6)
    cycles = 0
    metrics: Dict = {"processor_counts": list(counts)}
    for processors in counts:
        result = run_vectorized(processors, horizon.measure, seed)
        cycles += result.ticks
        metrics[f"np{processors}.bus_load"] = result.bus_load
        metrics[f"np{processors}.mean_tpi"] = result.mean_tpi
        metrics[f"np{processors}.miss_rate"] = result.miss_rate
        metrics["backend"] = result.backend
    return cycles, metrics


SCENARIOS: Tuple[Scenario, ...] = (
    Scenario("exerciser-1cpu",
             "Threads exerciser, 1 CPU x 8 threads (Table 2 left column)",
             full=Horizon(50_000, 150_000), quick=Horizon(20_000, 60_000),
             runner=_exerciser_runner(1, 8)),
    Scenario("exerciser-5cpu",
             "Threads exerciser, 5 CPUs x 16 threads (Table 2 right column)",
             full=Horizon(50_000, 150_000), quick=Horizon(20_000, 60_000),
             runner=_exerciser_runner(5, 16)),
    Scenario("table1-sweep",
             "Synthetic workload at Table 1 processor counts vs the model",
             full=Horizon(30_000, 60_000), quick=Horizon(15_000, 30_000),
             runner=_table1_runner),
    Scenario("protocol-comparison",
             "firefly vs write-through coherence on 4 CPUs",
             full=Horizon(30_000, 60_000), quick=Horizon(15_000, 30_000),
             runner=_protocol_runner),
    Scenario("chaos-smoke",
             "fault-injection campaign: bus parity + CPU offline recovery",
             full=Horizon(10_000, 90_000), quick=Horizon(5_000, 45_000),
             runner=_chaos_smoke_runner),
    Scenario("serve-smoke",
             "resilient serving: steady Poisson + latency under chaos",
             full=Horizon(150_000, 1_200_000),
             quick=Horizon(60_000, 400_000),
             runner=_serve_smoke_runner),
    Scenario("core-microbench",
             "scheduler-only event-core microbenchmark (no models)",
             full=Horizon(0, 20_000), quick=Horizon(0, 5_000),
             runner=_core_microbench_runner),
    Scenario("vector-stat",
             "vectorized statistical mode at Table 1 processor counts",
             full=Horizon(0, 400_000), quick=Horizon(0, 100_000),
             runner=_vector_stat_runner),
)


def scenario_names() -> List[str]:
    return [scenario.name for scenario in SCENARIOS]


# ---------------------------------------------------------------------------
# running the suite


@dataclass(frozen=True)
class Trial:
    """One timed run of one scenario."""

    seed: int
    cycles: int
    wall_seconds: float
    ticks_per_second: float

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "cycles": self.cycles,
                "wall_seconds": self.wall_seconds,
                "ticks_per_second": self.ticks_per_second}


@dataclass
class ScenarioResult:
    """All trials of one scenario plus the canonical-seed metrics."""

    scenario: Scenario
    trials: List[Trial] = field(default_factory=list)
    metrics: Dict = field(default_factory=dict)

    @property
    def median_ticks_per_second(self) -> float:
        return median(t.ticks_per_second for t in self.trials)

    @property
    def noise(self) -> float:
        """Trial spread: (max - min) / median of ticks/sec."""
        rates = [t.ticks_per_second for t in self.trials]
        mid = median(rates)
        if mid == 0:
            return 0.0
        return (max(rates) - min(rates)) / mid

    def to_dict(self) -> Dict:
        return {
            "description": self.scenario.description,
            "trials": [t.to_dict() for t in self.trials],
            "median_ticks_per_second": self.median_ticks_per_second,
            "noise": self.noise,
            "metrics": self.metrics,
        }


def run_scenario(scenario: Scenario, quick: bool = False,
                 trials: Optional[int] = None,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> ScenarioResult:
    """Run one scenario's seeded trials; metrics come from trial 0."""
    count = _trial_count(quick, trials)
    horizon = scenario.horizon(quick)
    result = ScenarioResult(scenario)
    for index in range(count):
        seed = TRIAL_SEEDS[index]
        start = _now()
        cycles, metrics = scenario.runner(scenario, horizon, seed)
        elapsed = _now() - start
        ticks = cycles / elapsed if elapsed > 0 else 0.0
        result.trials.append(Trial(seed, cycles, elapsed, ticks))
        if index == 0:
            result.metrics = metrics
        if progress is not None:
            progress(f"  {scenario.name} trial {index + 1}/{count}: "
                     f"{ticks / 1e3:.0f}K ticks/s")
    return result


# -- disabled-tracing overhead guard ----------------------------------------


def _overhead_run(attach: bool, horizon: Horizon, seed: int) -> float:
    """Wall-clock of one exerciser run; probes attached then detached.

    ``attach=True`` exercises the *disabled* configuration every user
    gets after telemetry teardown: probes were live once, then restored
    to ``NULL_PROBE``, so only the dead ``probe.active`` branches
    remain.  Any wall-clock gap vs the never-attached baseline is
    instrumentation overhead that escaped the disabled path.
    """
    kernel = build_exerciser(2, ExerciserParams(threads=8), seed=seed)
    if attach:
        hub = TelemetryHub(kernel.sim, max_events=0)
        attach_kernel(hub, kernel)
        kernel.probe = kernel.scheduler.probe = NULL_PROBE
        machine = kernel.machine
        machine.probe = machine.mbus.probe = NULL_PROBE
        for cache in machine.caches:
            cache.probe = NULL_PROBE
        if machine.qbus is not None:
            machine.qbus.probe = NULL_PROBE
    start = _now()
    kernel.run(warmup_cycles=horizon.warmup, measure_cycles=horizon.measure)
    return _now() - start


def _recorder_run(horizon: Horizon, seed: int) -> float:
    """Wall-clock of one exerciser run with the flight recorder live.

    This is the always-on configuration: the recorder's own streaming
    hub with only the low-rate categories enabled, events flowing into
    the bounded ring for the whole run.
    """
    from repro.causal.recorder import FlightRecorder

    kernel = build_exerciser(2, ExerciserParams(threads=8), seed=seed)
    recorder = FlightRecorder(kernel)
    start = _now()
    kernel.run(warmup_cycles=horizon.warmup, measure_cycles=horizon.measure)
    elapsed = _now() - start
    recorder.detach()
    return elapsed


def measure_overhead(quick: bool = False,
                     budget: float = OVERHEAD_BUDGET,
                     recorder_budget: float = RECORDER_BUDGET) -> Dict:
    """Minimum disabled/baseline wall-clock ratio over interleaved reps.

    The gate statistic is the *minimum* per-rep ratio, not the median:
    disabled-tracing overhead is a fixed cost that can only add time,
    while host noise (scheduler preemption, frequency scaling) inflates
    either side of a rep by several percent.  The smallest observed
    ratio is therefore the tightest upper bound on the true overhead a
    finite sample provides — a median-based 2% gate flakes on any
    shared host whose noise floor exceeds the budget.
    """
    horizon = Horizon(10_000, 50_000) if quick else Horizon(20_000, 100_000)
    reps = 3 if quick else 5
    ratios = []
    recorder_ratios = []
    for rep in range(reps):
        seed = TRIAL_SEEDS[rep % len(TRIAL_SEEDS)]
        baseline = _overhead_run(False, horizon, seed)
        disabled = _overhead_run(True, horizon, seed)
        recording = _recorder_run(horizon, seed)
        if baseline > 0:
            ratios.append(disabled / baseline)
            recorder_ratios.append(recording / baseline)
    ratio = min(ratios) if ratios else 1.0
    recorder_ratio = min(recorder_ratios) if recorder_ratios else 1.0
    return {
        "scenario": "exerciser 2 CPUs x 8 threads",
        "reps": reps,
        "cycles_per_run": horizon.total,
        "disabled_ratio": ratio,
        "budget": budget,
        "recorder_ratio": recorder_ratio,
        "recorder_budget": recorder_budget,
        "recorder_ok": recorder_ratio <= 1.0 + recorder_budget,
        "ok": (ratio <= 1.0 + budget
               and recorder_ratio <= 1.0 + recorder_budget),
    }


# ---------------------------------------------------------------------------
# BENCH files


def _trial_count(quick: bool, trials: Optional[int]) -> int:
    count = trials if trials is not None else (2 if quick else 3)
    if count < 1:
        raise ConfigurationError(f"trials must be >= 1, got {count}")
    if count > len(TRIAL_SEEDS):
        raise ConfigurationError(
            f"at most {len(TRIAL_SEEDS)} trials are pinned, got {count}")
    return count


def _run_suite_parallel(selected: List[Scenario], quick: bool, count: int,
                        jobs: int, engine: str,
                        progress: Optional[Callable[[str], None]]
                        ) -> Dict[str, Dict]:
    """All (scenario x trial) cells fanned out across worker processes.

    Every trial rebuilds its world from its seed inside the worker, so
    the simulated fields of the result are identical to the serial
    path's; only the wall-clock measurements differ (they describe the
    host, and a loaded host at ``jobs=N`` is a different host).
    Results are merged back in (scenario, trial) order.  The engine
    travels in every spec — worker processes do not inherit the
    parent's ambient default.
    """
    from repro.observatory.runner import (bench_trial, describe_bench_spec,
                                          run_ordered)

    specs = [(scenario.name, quick, TRIAL_SEEDS[index], engine)
             for scenario in selected for index in range(count)]
    records = run_ordered(specs, bench_trial, jobs=jobs,
                          describe=describe_bench_spec)
    entries: Dict[str, Dict] = {}
    cursor = 0
    for scenario in selected:
        result = ScenarioResult(scenario)
        for index in range(count):
            record = records[cursor]
            cursor += 1
            result.trials.append(Trial(
                record["seed"], record["cycles"], record["wall_seconds"],
                record["ticks_per_second"]))
            if index == 0:
                result.metrics = record["metrics"]
        if progress is not None:
            progress(f"  {scenario.name}: "
                     f"{result.median_ticks_per_second / 1e3:.0f}K ticks/s "
                     f"median over {count} trial(s)")
        entries[scenario.name] = result.to_dict()
    return entries


def run_suite(quick: bool = False, trials: Optional[int] = None,
              scenarios: Optional[List[str]] = None,
              skip_overhead: bool = False,
              jobs: int = 1,
              engine: Optional[str] = None,
              progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the pinned suite and return the BENCH document.

    ``jobs > 1`` fans the (scenario x trial) grid out over worker
    processes via :mod:`repro.observatory.runner`; the simulated
    content of the document is identical at any job count.

    ``engine`` pins the event engine for every trial (default: the
    process-wide default, normally ``"wheel"``).  The engine is a pure
    host-side choice — identical pop order, metrics and telemetry —
    so the document's simulated fields are engine-independent; only
    ticks/s moves, which is exactly what ``--engine heap`` exists to
    measure.
    """
    engine = engine or default_engine()
    selected = list(SCENARIOS)
    if scenarios:
        by_name = {s.name: s for s in SCENARIOS}
        unknown = sorted(set(scenarios) - set(by_name))
        if unknown:
            raise ConfigurationError(
                f"unknown scenario(s) {', '.join(unknown)}; "
                f"pinned: {', '.join(scenario_names())}")
        selected = [by_name[name] for name in scenarios]
    document: Dict = {
        "schema": BENCH_SCHEMA,
        "mode": "quick" if quick else "full",
        "engine": engine,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        # Provenance (PR 6): which revision produced this document and
        # a content hash of the suite configuration.  Absent from
        # BENCH files written before the stamp existed; every reader
        # tolerates that.
        "provenance": provenance_stamp({
            "mode": "quick" if quick else "full",
            "trials": trials,
            "scenarios": [s.name for s in selected],
            "skip_overhead": skip_overhead,
            "engine": engine,
        }, schema=BENCH_SCHEMA),
        "scenarios": {},
        "overhead": None,
    }
    previous = set_default_engine(engine)
    try:
        if jobs is not None and jobs > 1:
            count = _trial_count(quick, trials)
            document["scenarios"] = _run_suite_parallel(
                selected, quick, count, jobs, engine, progress)
        else:
            for scenario in selected:
                if progress is not None:
                    progress(f"{scenario.name}: {scenario.description}")
                result = run_scenario(scenario, quick=quick, trials=trials,
                                      progress=progress)
                document["scenarios"][scenario.name] = result.to_dict()
        if not skip_overhead:
            if progress is not None:
                progress("overhead: disabled-tracing wall-clock guard")
            document["overhead"] = measure_overhead(quick=quick)
    finally:
        set_default_engine(previous)
    return document


def validate_bench(document: Dict) -> List[str]:
    """Structural problems with a BENCH document ([] when valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    if document.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {document.get('schema')!r}, "
                        f"expected {BENCH_SCHEMA!r}")
    if document.get("mode") not in ("full", "quick"):
        problems.append("mode must be 'full' or 'quick'")
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        problems.append("scenarios must be a non-empty object")
        scenarios = {}
    for name, entry in scenarios.items():
        if not isinstance(entry, dict):
            problems.append(f"{name}: entry is not an object")
            continue
        trials = entry.get("trials")
        if not isinstance(trials, list) or not trials:
            problems.append(f"{name}: trials must be a non-empty list")
        else:
            for i, trial in enumerate(trials):
                for key in ("seed", "cycles", "wall_seconds",
                            "ticks_per_second"):
                    if not isinstance(trial.get(key), (int, float)):
                        problems.append(f"{name}: trial {i} missing {key}")
        for key in ("median_ticks_per_second", "noise"):
            if not isinstance(entry.get(key), (int, float)):
                problems.append(f"{name}: missing numeric {key}")
        if not isinstance(entry.get("metrics"), dict):
            problems.append(f"{name}: metrics must be an object")
        elif not entry["metrics"]:
            problems.append(f"{name}: metrics is empty")
    overhead = document.get("overhead")
    if overhead is not None:
        if not isinstance(overhead, dict):
            problems.append("overhead must be an object or null")
        else:
            for key in ("disabled_ratio", "budget", "ok"):
                if key not in overhead:
                    problems.append(f"overhead: missing {key}")
    # Provenance is optional — BENCH files predating the stamp carry
    # none — but when present it must at least be an object.
    provenance = document.get("provenance")
    if provenance is not None and not isinstance(provenance, dict):
        problems.append("provenance must be an object when present")
    return problems


def bench_files(directory: Path) -> List[Path]:
    """Existing BENCH_<n>.json files, ordered by index."""
    found = []
    for path in directory.iterdir():
        match = BENCH_PATTERN.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def next_bench_path(directory: Path) -> Path:
    """The path the next BENCH file should be written to."""
    existing = bench_files(directory)
    if not existing:
        return directory / "BENCH_0001.json"
    last = int(BENCH_PATTERN.match(existing[-1].name).group(1))
    return directory / f"BENCH_{last + 1:04d}.json"


def write_bench(document: Dict, directory: Path) -> Path:
    """Validate and write the next BENCH_<n>.json; returns its path."""
    problems = validate_bench(document)
    if problems:
        raise ConfigurationError(
            "refusing to write an invalid BENCH document: "
            + "; ".join(problems))
    path = next_bench_path(directory)
    if path.exists():
        # next_bench_path always indexes past the existing files, so
        # hitting this means two writers raced for the same slot;
        # refuse rather than clobber a result that was just produced.
        raise ConfigurationError(
            f"refusing to overwrite {path}; another bench run claimed "
            f"this index concurrently — rerun to take the next slot")
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: Path) -> Dict:
    """Load and validate a BENCH file."""
    document = json.loads(path.read_text())
    problems = validate_bench(document)
    if problems:
        raise ConfigurationError(
            f"{path} is not a valid BENCH file: " + "; ".join(problems))
    return document


# ---------------------------------------------------------------------------
# regression detection


@dataclass(frozen=True)
class ScenarioDelta:
    """Throughput movement of one scenario between two BENCH files."""

    name: str
    previous: float
    current: float
    ratio: float
    margin: float
    status: str  # "regression" | "improvement" | "flat"

    def to_dict(self) -> Dict:
        return {"name": self.name, "previous": self.previous,
                "current": self.current, "ratio": self.ratio,
                "margin": self.margin, "status": self.status}


@dataclass(frozen=True)
class CompareReport:
    """The regression detector's verdict over all shared scenarios."""

    deltas: List[ScenarioDelta]
    skipped: List[str]
    mode_mismatch: bool

    @property
    def regressions(self) -> List[ScenarioDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        from repro.reporting import Column, TextTable

        table = TextTable([
            Column("scenario", align_left=True),
            Column("prev ticks/s", ",.0f"), Column("cur ticks/s", ",.0f"),
            Column("ratio", ".3f"), Column("margin", ".0%"),
            Column("status", align_left=True)])
        for delta in self.deltas:
            table.add_row(delta.name, delta.previous, delta.current,
                          delta.ratio, delta.margin, delta.status)
        lines = [table.render()]
        if self.skipped:
            lines.append("skipped (not in both files): "
                         + ", ".join(self.skipped))
        if self.mode_mismatch:
            lines.append("warning: comparing a quick run against a full "
                         "run; throughput is not like-for-like")
        lines.append("bench compare: "
                     + ("OK" if self.ok
                        else f"{len(self.regressions)} regression(s)"))
        return "\n".join(lines)


def compare_bench(previous: Dict, current: Dict,
                  threshold: float = DEFAULT_THRESHOLD) -> CompareReport:
    """Noise-aware throughput comparison of two BENCH documents.

    A scenario regresses when its median ticks/sec falls by more than
    the margin — the regression ``threshold`` widened to the larger of
    the two runs' observed trial noise, so a machine whose trials vary
    by 30% cannot produce a spurious 20% "regression".
    """
    if threshold <= 0:
        raise ConfigurationError(f"threshold must be positive, "
                                 f"got {threshold}")
    deltas: List[ScenarioDelta] = []
    skipped: List[str] = []
    prev_scenarios = previous.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    for name in sorted(set(prev_scenarios) | set(cur_scenarios)):
        if name not in prev_scenarios or name not in cur_scenarios:
            skipped.append(name)
            continue
        prev, cur = prev_scenarios[name], cur_scenarios[name]
        before = prev["median_ticks_per_second"]
        after = cur["median_ticks_per_second"]
        margin = max(threshold, prev.get("noise", 0.0),
                     cur.get("noise", 0.0))
        ratio = after / before if before > 0 else float("inf")
        if ratio < 1.0 - margin:
            status = "regression"
        elif ratio > 1.0 + margin:
            status = "improvement"
        else:
            status = "flat"
        deltas.append(ScenarioDelta(name, before, after, ratio,
                                    margin, status))
    return CompareReport(
        deltas=deltas, skipped=skipped,
        mode_mismatch=previous.get("mode") != current.get("mode"))
