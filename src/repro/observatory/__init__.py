"""The performance observatory: spans, model divergence, benchmarks.

Three instruments over one simulated machine:

- :mod:`repro.observatory.spans` — every MBus transaction and cache
  miss as a latency span with causal decomposition and streaming
  p50/p95/p99 percentiles;
- :mod:`repro.observatory.divergence` — the §5.2 queueing model
  evaluated continuously at measured rates, with residual bands
  (the live Table 1 vs Table 2 gap);
- :mod:`repro.observatory.bench` — the pinned ``firefly-sim bench``
  suite, BENCH_<n>.json files, and the noise-aware regression
  detector.

See docs/OBSERVATORY.md.
"""

from repro.observatory.bench import (
    BENCH_SCHEMA,
    DEFAULT_THRESHOLD,
    SCENARIOS,
    CompareReport,
    ScenarioDelta,
    bench_files,
    compare_bench,
    load_bench,
    measure_overhead,
    next_bench_path,
    run_scenario,
    run_suite,
    scenario_names,
    validate_bench,
    write_bench,
)
from repro.observatory.divergence import (
    DivergenceBands,
    DivergenceMonitor,
    DivergenceReport,
    DivergenceSample,
    MetricVerdict,
)
from repro.observatory.runner import (
    SWEEP_SCHEMA,
    TrialFailure,
    run_ordered,
    run_sweep,
)
from repro.observatory.spans import (
    BusSpan,
    CacheSpan,
    SpanTracer,
    trace_spans,
)

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_THRESHOLD",
    "SCENARIOS",
    "BusSpan",
    "CacheSpan",
    "CompareReport",
    "DivergenceBands",
    "DivergenceMonitor",
    "DivergenceReport",
    "DivergenceSample",
    "MetricVerdict",
    "SWEEP_SCHEMA",
    "ScenarioDelta",
    "SpanTracer",
    "TrialFailure",
    "bench_files",
    "compare_bench",
    "load_bench",
    "measure_overhead",
    "next_bench_path",
    "run_ordered",
    "run_scenario",
    "run_suite",
    "run_sweep",
    "scenario_names",
    "trace_spans",
    "validate_bench",
    "write_bench",
]
