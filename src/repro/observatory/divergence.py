"""The analytic-model divergence monitor: Table 1 vs Table 2, live.

The paper's §5.2 model predicted Table 1; the hardware measured
Table 2; and the authors spend §5.3 explaining the gap — prefetching,
heavy sharing, and instruction mixes the "slide-rule" model doesn't
see.  This module quantifies exactly that gap *during* a simulation:

every ``interval`` cycles the monitor reduces the last window to the
model's inputs (miss rate M, dirty fraction D, shared-write fraction
S, all *measured*), evaluates the open queueing model of
:mod:`repro.analytic.queueing` at those inputs, and records residuals

- **bus utilization** — measured L minus the load the model predicts
  for this processor count (absolute band; positive = the model
  *underpredicts*, the paper's heavy-sharing signature);
- **TPI** — measured ticks-per-instruction vs the model's TPI at the
  *measured* load (relative band; the exerciser's light instruction
  mix and prefetching make the model *overpredict* here, the paper's
  "Actual exceeds Expected" observation);
- **relative performance** — RP = base_tpi / TPI, measured vs
  predicted (relative band).

Windows in which a CPU retires zero references (or zero instructions)
produce ``None`` measurements and are skipped, never a crash or a
silent 0.0.  Residuals outside the configured
:class:`DivergenceBands` raise a counter, emit a ``model.divergence``
telemetry event when a probe is live, and flip the metric's verdict in
the final :class:`DivergenceReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.analytic.queueing import AnalyticParameters, FireflyAnalyticModel
from repro.common.errors import ConfigurationError

#: Residual metric names, in report order.
METRICS = ("bus_load", "tpi", "relative_performance")


@dataclass(frozen=True)
class DivergenceBands:
    """Residual tolerances; outside them a window is out-of-band.

    ``bus_load_abs`` is absolute (load is already a fraction); the
    other two are relative to the predicted value.  The defaults are
    loose enough that the paper's 1-CPU agreement stays in-band while
    the 5-CPU heavy-sharing gap is flagged.
    """

    bus_load_abs: float = 0.15
    tpi_rel: float = 0.30
    relative_performance_rel: float = 0.30

    def __post_init__(self) -> None:
        for name in ("bus_load_abs", "tpi_rel", "relative_performance_rel"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def limit(self, metric: str) -> float:
        return {"bus_load": self.bus_load_abs, "tpi": self.tpi_rel,
                "relative_performance": self.relative_performance_rel}[metric]


@dataclass(frozen=True)
class DivergenceSample:
    """One window's measurements, predictions and residuals."""

    time: int
    measured_miss_rate: float
    measured_dirty_fraction: float
    measured_shared_write_fraction: Optional[float]
    measured: Dict[str, float]
    predicted: Dict[str, float]
    residuals: Dict[str, float]
    out_of_band: Dict[str, bool]


@dataclass(frozen=True)
class MetricVerdict:
    """Aggregated residual behaviour for one metric."""

    metric: str
    samples: int
    mean_measured: float
    mean_predicted: float
    mean_residual: float
    max_abs_residual: float
    out_of_band_fraction: float
    band: float
    verdict: str  # "in-band" | "underpredicts" | "overpredicts"

    def to_dict(self) -> Dict:
        return {
            "metric": self.metric, "samples": self.samples,
            "mean_measured": self.mean_measured,
            "mean_predicted": self.mean_predicted,
            "mean_residual": self.mean_residual,
            "max_abs_residual": self.max_abs_residual,
            "out_of_band_fraction": self.out_of_band_fraction,
            "band": self.band, "verdict": self.verdict,
        }


@dataclass(frozen=True)
class DivergenceReport:
    """The structured divergence report for one run."""

    processors: int
    windows: int
    skipped_windows: int
    verdicts: Dict[str, MetricVerdict]

    @property
    def ok(self) -> bool:
        """Whether every metric stayed in-band."""
        return all(v.verdict == "in-band" for v in self.verdicts.values())

    def to_dict(self) -> Dict:
        return {
            "processors": self.processors, "windows": self.windows,
            "skipped_windows": self.skipped_windows,
            "ok": self.ok,
            "metrics": {m: v.to_dict() for m, v in self.verdicts.items()},
        }

    def render(self) -> str:
        from repro.reporting import Column, TextTable

        header = (f"analytic-model divergence: {self.processors} CPUs, "
                  f"{self.windows} windows"
                  + (f" ({self.skipped_windows} skipped)"
                     if self.skipped_windows else ""))
        table = TextTable([
            Column("metric", align_left=True), Column("measured", ".3f"),
            Column("predicted", ".3f"), Column("residual", "+.3f"),
            Column("band", ".2f"), Column("out-of-band", ".0%"),
            Column("verdict", align_left=True)])
        for metric in METRICS:
            verdict = self.verdicts.get(metric)
            if verdict is None:
                continue
            table.add_row(metric, verdict.mean_measured,
                          verdict.mean_predicted, verdict.mean_residual,
                          verdict.band, verdict.out_of_band_fraction,
                          verdict.verdict)
        return header + "\n" + table.render()


class _Snapshot:
    """Cumulative counter values at one instant (window arithmetic)."""

    __slots__ = ("now", "bus_busy", "hits", "misses", "instructions",
                 "idle", "data_writes", "write_through_ops")

    def __init__(self, machine) -> None:
        self.now = machine.sim.now
        self.bus_busy = machine.mbus.utilization.busy_total
        hits = misses = 0
        for cache in machine.caches:
            stats = cache.stats
            for key in ("ifetch.hit", "dread.hit", "dwrite.hit"):
                hits += stats[key].total
            for key in ("ifetch.miss", "dread.miss", "dwrite.miss"):
                misses += stats[key].total
        self.hits = hits
        self.misses = misses
        self.instructions = sum(cpu.stats["instructions"].total
                                for cpu in machine.cpus)
        self.idle = sum(cpu.stats["idle_cycles"].total
                        for cpu in machine.cpus)
        self.data_writes = sum(cpu.stats["refs.dwrite"].total
                               for cpu in machine.cpus)
        bus = machine.mbus.stats
        self.write_through_ops = (bus["write.mshared"].total
                                  + bus["write.not_mshared"].total)


class DivergenceMonitor:
    """Continuously compares the queueing model against a running machine.

    Drives itself with ``sim.call_at`` callbacks, like a telemetry
    sampler; :meth:`start` before running, :meth:`report` after.  Works
    on a bare :class:`~repro.system.machine.FireflyMachine` or anything
    exposing ``.machine`` (a Topaz kernel).

    Parameters
    ----------
    subject:
        The machine or kernel under measurement.
    bands:
        Residual tolerances (default :class:`DivergenceBands`).
    interval:
        Cycles per evaluation window.
    base_params:
        The model's non-measured inputs (mix, base TPI, bus ticks);
        measured M/D/S are substituted each window.
    """

    def __init__(self, subject, bands: Optional[DivergenceBands] = None,
                 interval: int = 10_000,
                 base_params: Optional[AnalyticParameters] = None) -> None:
        if interval < 1:
            raise ConfigurationError(
                f"divergence interval must be >= 1 cycle, got {interval}")
        self.machine = getattr(subject, "machine", subject)
        self.bands = bands or DivergenceBands()
        self.interval = interval
        self.base_params = base_params or AnalyticParameters()
        self.samples: List[DivergenceSample] = []
        self.skipped_windows = 0
        self.out_of_band_counts = {metric: 0 for metric in METRICS}
        self._running = False
        self._last: Optional[_Snapshot] = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Prime the first window and begin periodic evaluation."""
        if self._running:
            return
        self._running = True
        self._last = _Snapshot(self.machine)
        self.machine.sim.call_at(self.interval, self._tick)

    def stop(self) -> None:
        """Stop evaluating; pending callbacks become no-ops."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.evaluate_window()
        self.machine.sim.call_at(self.interval, self._tick)

    # -- evaluation -----------------------------------------------------

    def evaluate_window(self) -> Optional[DivergenceSample]:
        """Close the current window, evaluate the model, open the next."""
        current = _Snapshot(self.machine)
        previous, self._last = self._last, current
        if previous is None:
            return None
        sample = self._compare(previous, current)
        if sample is None:
            self.skipped_windows += 1
            return None
        self.samples.append(sample)
        for metric, outside in sample.out_of_band.items():
            if outside:
                self.out_of_band_counts[metric] += 1
        probe = self.machine.probe
        if probe.active and any(sample.out_of_band.values()):
            flagged = sorted(m for m, out in sample.out_of_band.items()
                             if out)
            probe.instant("model.divergence", "machine",
                          metrics=",".join(flagged),
                          **{f"residual.{m}": round(sample.residuals[m], 4)
                             for m in flagged})
        return sample

    def _compare(self, previous: _Snapshot,
                 current: _Snapshot) -> Optional[DivergenceSample]:
        elapsed = current.now - previous.now
        if elapsed <= 0:
            return None
        references = ((current.hits - previous.hits)
                      + (current.misses - previous.misses))
        instructions = current.instructions - previous.instructions
        if references == 0 or instructions == 0:
            # A window in which no CPU retired anything has no defined
            # miss rate or TPI; skip it rather than divide by zero.
            return None

        miss_rate = (current.misses - previous.misses) / references
        load = (current.bus_busy - previous.bus_busy) / elapsed
        processors = len(self.machine.cpus)
        tick_cycles = self.machine.cpus[0].timing.tick_cycles
        busy_cycles = processors * elapsed - (current.idle - previous.idle)
        tpi = busy_cycles / tick_cycles / instructions
        if tpi <= 0:
            return None
        data_writes = current.data_writes - previous.data_writes
        shared_writes: Optional[float] = None
        if data_writes > 0:
            shared_writes = ((current.write_through_ops
                              - previous.write_through_ops) / data_writes)
        dirty = [cache.dirty_fraction() for cache in self.machine.caches]
        dirty_fraction = sum(dirty) / len(dirty) if dirty else 0.0

        params = replace(
            self.base_params,
            miss_rate=min(max(miss_rate, 1e-6), 1.0 - 1e-6),
            dirty_fraction=min(max(dirty_fraction, 0.0), 1.0),
            shared_write_fraction=min(max(
                shared_writes
                if shared_writes is not None
                else self.base_params.shared_write_fraction, 0.0), 1.0))
        model = FireflyAnalyticModel(params)
        try:
            predicted_load = model.load_for_processors(processors)
        except ConfigurationError:
            return None
        bounded_load = min(load, 1.0 - 1e-9)
        predicted_tpi = model.tpi(bounded_load)
        measured = {
            "bus_load": load,
            "tpi": tpi,
            "relative_performance": params.base_tpi / tpi,
        }
        predicted = {
            "bus_load": predicted_load,
            "tpi": predicted_tpi,
            "relative_performance": params.base_tpi / predicted_tpi,
        }
        residuals = {
            "bus_load": load - predicted_load,
            "tpi": (tpi - predicted_tpi) / predicted_tpi,
            "relative_performance":
                (measured["relative_performance"]
                 - predicted["relative_performance"])
                / predicted["relative_performance"],
        }
        out_of_band = {metric: abs(residuals[metric]) > self.bands.limit(metric)
                       for metric in METRICS}
        return DivergenceSample(
            time=current.now, measured_miss_rate=miss_rate,
            measured_dirty_fraction=dirty_fraction,
            measured_shared_write_fraction=shared_writes,
            measured=measured, predicted=predicted, residuals=residuals,
            out_of_band=out_of_band)

    # -- reporting ------------------------------------------------------

    def report(self) -> DivergenceReport:
        """Aggregate all windows into the structured divergence report."""
        verdicts: Dict[str, MetricVerdict] = {}
        n = len(self.samples)
        for metric in METRICS:
            if n == 0:
                verdicts[metric] = MetricVerdict(
                    metric, 0, 0.0, 0.0, 0.0, 0.0, 0.0,
                    self.bands.limit(metric), "in-band")
                continue
            residuals = [s.residuals[metric] for s in self.samples]
            mean_residual = sum(residuals) / n
            band = self.bands.limit(metric)
            if abs(mean_residual) <= band:
                verdict = "in-band"
            elif mean_residual > 0:
                verdict = "underpredicts"
            else:
                verdict = "overpredicts"
            verdicts[metric] = MetricVerdict(
                metric=metric, samples=n,
                mean_measured=sum(s.measured[metric]
                                  for s in self.samples) / n,
                mean_predicted=sum(s.predicted[metric]
                                   for s in self.samples) / n,
                mean_residual=mean_residual,
                max_abs_residual=max(abs(r) for r in residuals),
                out_of_band_fraction=self.out_of_band_counts[metric] / n,
                band=band, verdict=verdict)
        return DivergenceReport(
            processors=len(self.machine.cpus), windows=n,
            skipped_windows=self.skipped_windows, verdicts=verdicts)
