"""Command-line interface: ``firefly-sim``.

Subcommands:

``simulate``
    Build a machine and run the calibrated workload; print the metric
    summary (optionally the Figure 1 diagram and the bus trace).
``table1``
    Print the analytic Table 1 for a chosen parameter set.
``exerciser``
    Run the Topaz Threads exerciser (the Table 2 workload) and print
    the measurement block.
``fsm``
    Print a coherence protocol's measured state-transition table
    (Figure 3 for the firefly protocol).
``trace``
    Run a workload with full telemetry, write a Chrome-trace/JSONL
    file, and print the per-phase ASCII timeline.
``postmortem``
    Render a ``firefly-crash/1`` crash report (from a crash JSON or a
    chaos report that captured one) as a human-readable postmortem:
    the error, the wait-for cycle, per-CPU run state and the flight
    recorder's causal timeline.  ``--scenario deadlock`` runs the
    pinned AB/BA deadlock instead and captures the report live
    (``--json`` saves it).  See docs/CAUSAL.md.
``verify``
    Static analysis: run the guard checker over every protocol's
    declarative DSL definition (exhaustiveness, determinism,
    reachability, fact consistency — docs/PROTOCOL_DSL.md), then
    exhaustively model-check the protocol's reachable N-cache global
    state space against the I1–I4 coherence invariants plus
    transition-table structural properties, and run the
    simulation-safety linter over the sources.  ``--json`` writes the
    findings (stable ordering) for CI; ``--oracle dsl`` explores with
    the pure generated oracle instead of the simulator.  Exits
    non-zero on any violation; see docs/VERIFY.md.
``bench``
    Run the pinned benchmark suite, write ``BENCH_<n>.json``, and
    optionally compare against the previous BENCH file with the
    noise-aware regression detector.  See docs/OBSERVATORY.md.
``chaos``
    Run the seeded fault-injection campaigns: pinned scenarios covering
    bus parity corruption, SECDED memory flips, dropped snoops, CPU
    board failure and QBus device timeouts, each reporting detection
    latency, recovery time and degradation vs a fault-free twin.
    Identical seeds produce byte-identical reports; exits non-zero if
    any scenario's recovery story fails.  See docs/FAULTS.md.
``serve``
    Run the resilient-serving SLO campaigns: open-loop client tiers
    firing Poisson/bursty/diurnal arrivals at RPC server pools through
    the resilience layer (deadlines, retries, circuit breakers, load
    shedding, hedging), reporting per-class p50/p95/p99 latency plus
    shed/retry/hedge counts, with the latency-under-chaos scenario
    composing fault injection and reporting degradation vs a
    fault-free twin.  Exits non-zero if any scenario violates its SLO
    gates.  See docs/SERVING.md.
``sweep``
    Run a (processor-count x seed) grid of machine runs and print (or
    write as JSON) the purely simulated metrics.  The document is
    byte-identical at any ``--jobs`` value.
``campaign``
    The campaign manager (see docs/CAMPAIGNS.md): ``run`` executes a
    declarative YAML/JSON campaign spec against the persistent result
    ledger, skipping already-completed trials, checking pinned golden
    digests, and writing a byte-deterministic merged report;
    ``resume`` is ``run`` that refuses to start from an empty ledger;
    ``report`` renders the static HTML regression dashboard from the
    committed ``BENCH_<n>.json`` trajectory plus the campaign ledgers;
    ``gc`` compacts a ledger to the rows the current spec and git
    revision can still use.

``bench``, ``chaos``, ``serve``, ``sweep`` and ``campaign run`` accept
``--jobs N`` to fan their seeded trials out over worker processes (see
:mod:`repro.observatory.runner`); parallelism changes wall-clock
timing fields only, never a simulated bit.

``simulate`` and ``exerciser`` also accept ``--telemetry-out PATH`` to
capture a trace of an ordinary run, ``--spans`` for transaction span
percentiles, and ``--divergence`` for the live analytic-model
residual report.  Every file-writing flag (``--telemetry-out``, sweep
and chaos ``--json``, campaign ``--report``/``--out``) refuses to
overwrite an existing file unless ``--force`` is passed.

Examples::

    firefly-sim simulate --processors 5 --protocol firefly
    firefly-sim simulate --generation cvax --processors 7 --diagram
    firefly-sim table1 --miss-rate 0.1
    firefly-sim exerciser --processors 5 --threads 16
    firefly-sim exerciser --processors 5 --telemetry-out run.trace.json
    firefly-sim exerciser --processors 5 --spans --divergence
    firefly-sim trace --workload exerciser --out trace.json
    firefly-sim postmortem --scenario deadlock --json crash.json
    firefly-sim postmortem crash.json
    firefly-sim fsm --protocol dragon
    firefly-sim verify --protocol firefly
    firefly-sim verify --all-protocols --dma
    firefly-sim verify --all-protocols --oracle dsl --json findings.json
    firefly-sim bench --quick
    firefly-sim bench --compare --threshold 0.2
    firefly-sim bench --quick --jobs 4 --baseline-dir . --compare
    firefly-sim chaos --quick
    firefly-sim chaos --seed 2024 --scenario snoop-storm --json report.json
    firefly-sim chaos --quick --jobs 4
    firefly-sim serve --quick
    firefly-sim serve --scenario latency-under-chaos --json serve.json
    firefly-sim serve --quick --jobs 2
    firefly-sim sweep --processors 1,3,5,7 --seeds 1987 --jobs 4
    firefly-sim campaign run examples/campaigns/quick.yaml --jobs 2
    firefly-sim campaign resume examples/campaigns/full.yaml
    firefly-sim campaign report --out dashboard.html
    firefly-sim campaign gc examples/campaigns/quick.yaml
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analytic.queueing import AnalyticParameters, FireflyAnalyticModel
from repro.cache.protocols import available_protocols
from repro.reporting import Column, TextTable, render_state_diagram, \
    render_system_diagram
from repro.system import (
    CoherenceChecker,
    FireflyConfig,
    FireflyMachine,
    Generation,
)
from repro.telemetry import (
    DEFAULT_SAMPLE_INTERVAL,
    telemetry_for_kernel,
    telemetry_for_machine,
    write_export,
)
from repro.workloads.threads_exerciser import (
    ExerciserParams,
    build_exerciser,
    exerciser_expectations,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="firefly-sim",
        description="Simulate the DEC SRC Firefly multiprocessor "
                    "(Thacker, Stewart & Satterthwaite, ASPLOS 1987)")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run the calibrated workload")
    sim.add_argument("--processors", type=int, default=5)
    sim.add_argument("--generation", choices=("microvax", "cvax"),
                     default="microvax")
    sim.add_argument("--protocol", choices=sorted(available_protocols()),
                     default="firefly")
    sim.add_argument("--memory-mb", type=int, default=None)
    sim.add_argument("--seed", type=int, default=1987)
    sim.add_argument("--warmup-cycles", type=int, default=200_000)
    sim.add_argument("--measure-cycles", type=int, default=300_000)
    sim.add_argument("--diagram", action="store_true",
                     help="print the Figure 1 system diagram")
    sim.add_argument("--skip-check", action="store_true",
                     help="skip the coherence audit")
    _add_telemetry_args(sim)

    table1 = sub.add_parser("table1", help="print the analytic Table 1")
    table1.add_argument("--miss-rate", type=float, default=0.2)
    table1.add_argument("--dirty-fraction", type=float, default=0.25)
    table1.add_argument("--shared-write-fraction", type=float, default=0.1)

    exerciser = sub.add_parser("exerciser",
                               help="run the Table 2 Threads exerciser")
    exerciser.add_argument("--processors", type=int, default=5)
    exerciser.add_argument("--threads", type=int, default=16)
    exerciser.add_argument("--seed", type=int, default=1987)
    exerciser.add_argument("--measure-cycles", type=int, default=400_000)
    _add_telemetry_args(exerciser)

    fsm = sub.add_parser("fsm", help="print a protocol's measured FSM")
    fsm.add_argument("--protocol", choices=sorted(available_protocols()),
                     default="firefly")

    verify = sub.add_parser(
        "verify", help="statically verify protocols and lint the sources")
    verify.add_argument("--protocol", choices=sorted(available_protocols()),
                        default=None,
                        help="verify one protocol (default: all)")
    verify.add_argument("--all-protocols", action="store_true",
                        help="verify every registered protocol")
    verify.add_argument("--caches", type=int, default=3,
                        help="caches in the modelled system (default 3)")
    verify.add_argument("--dma", action="store_true",
                        help="also model DMA stimuli through the I/O cache")
    verify.add_argument("--no-lint", action="store_true",
                        help="skip the simulation-safety linter")
    verify.add_argument("--lint-only", action="store_true",
                        help="run only the linter, no model checking")
    verify.add_argument("--lint-path", action="append", default=None,
                        metavar="PATH",
                        help="lint these files/dirs (default: the "
                             "installed repro package sources)")
    verify.add_argument("--oracle", choices=("sim", "dsl"), default="sim",
                        help="model-checker transition oracle: the live "
                             "simulator rig ('sim', default) or the pure "
                             "generated DSL oracle ('dsl', much faster)")
    verify.add_argument("--json", metavar="PATH", default=None,
                        help="write the findings document (guard/"
                             "structural/invariant findings, minimal "
                             "counterexamples, lint hits) as JSON with "
                             "stable ordering")
    verify.add_argument("--force", action="store_true",
                        help="overwrite an existing --json file")

    trace = sub.add_parser(
        "trace", help="run a workload under full telemetry")
    trace.add_argument("--workload", choices=("exerciser", "synthetic"),
                       default="exerciser")
    trace.add_argument("--out", default="firefly.trace.json",
                       help="output path (default firefly.trace.json)")
    trace.add_argument("--format", choices=("chrome", "jsonl"), default=None,
                       help="export format (default: by file suffix)")
    trace.add_argument("--processors", type=int, default=5)
    trace.add_argument("--threads", type=int, default=16)
    trace.add_argument("--protocol", choices=sorted(available_protocols()),
                       default="firefly")
    trace.add_argument("--seed", type=int, default=1987)
    trace.add_argument("--warmup-cycles", type=int, default=100_000)
    trace.add_argument("--measure-cycles", type=int, default=200_000)
    trace.add_argument("--sample-interval", type=int,
                       default=DEFAULT_SAMPLE_INTERVAL)

    postmortem = sub.add_parser(
        "postmortem", help="render a crash report (or run the pinned "
                           "deadlock scenario and capture one)")
    postmortem.add_argument("report", nargs="?", metavar="PATH",
                            help="crash JSON (firefly-crash/1) or a "
                                 "chaos report containing one; omit "
                                 "when using --scenario")
    postmortem.add_argument("--scenario", choices=("deadlock",),
                            default=None,
                            help="run this pinned crash scenario and "
                                 "postmortem it live")
    postmortem.add_argument("--seed", type=int, default=None,
                            help="scenario seed (default: the pinned "
                                 "seed)")
    postmortem.add_argument("--json", metavar="PATH", default=None,
                            help="write the captured crash report as "
                                 "JSON (sorted keys, deterministic)")
    postmortem.add_argument("--force", action="store_true",
                            help="overwrite an existing --json file")

    bench = sub.add_parser(
        "bench", help="run the pinned benchmark suite (BENCH_<n>.json)")
    bench.add_argument("--quick", action="store_true",
                       help="short horizons and fewer trials (CI mode)")
    bench.add_argument("--trials", type=int, default=None,
                       help="seeded trials per scenario "
                            "(default: 3 full, 2 quick)")
    bench.add_argument("--scenario", action="append", default=None,
                       metavar="NAME",
                       help="run only this scenario (repeatable)")
    bench.add_argument("--out-dir", default=".",
                       help="directory for BENCH_<n>.json (default: .)")
    bench.add_argument("--compare", action="store_true",
                       help="compare against the newest committed BENCH "
                            "file; exit nonzero on a regression")
    bench.add_argument("--baseline", metavar="PATH", default=None,
                       help="BENCH file to compare against "
                            "(default: newest BENCH_<n>.json in "
                            "--baseline-dir)")
    bench.add_argument("--baseline-dir", metavar="DIR", default=None,
                       help="directory searched for the newest baseline "
                            "BENCH file (default: --out-dir)")
    bench.add_argument("--threshold", type=float, default=0.2,
                       help="regression threshold as a fraction "
                            "(default 0.2; widened by trial noise)")
    bench.add_argument("--skip-overhead", action="store_true",
                       help="skip the disabled-tracing overhead guard")
    bench.add_argument("--jobs", type=int, default=1,
                       help="worker processes for (scenario x trial) "
                            "fan-out; simulated results are identical "
                            "at any job count (default 1)")
    bench.add_argument("--engine", choices=("wheel", "heap"), default=None,
                       help="event engine for every trial (default: the "
                            "wheel); simulated metrics are identical "
                            "either way — only ticks/s moves")

    chaos = sub.add_parser(
        "chaos", help="run the seeded fault-injection campaigns")
    chaos.add_argument("--seed", type=int, default=1987,
                       help="fault-schedule seed (default 1987); the "
                            "same seed reproduces the same timeline")
    chaos.add_argument("--quick", action="store_true",
                       help="short horizons (CI smoke mode)")
    chaos.add_argument("--scenario", action="append", default=None,
                       metavar="NAME",
                       help="run only this scenario (repeatable)")
    chaos.add_argument("--list", action="store_true",
                       help="list the pinned scenarios and exit")
    chaos.add_argument("--json", metavar="PATH", default=None,
                       help="also write the campaign report as JSON")
    chaos.add_argument("--force", action="store_true",
                       help="overwrite an existing --json file")
    chaos.add_argument("--jobs", type=int, default=1,
                       help="worker processes for scenario fan-out; the "
                            "report is byte-identical at any job count "
                            "(default 1)")

    serve = sub.add_parser(
        "serve", help="run the resilient-serving SLO campaigns")
    serve.add_argument("--seed", type=int, default=1987,
                       help="workload seed (default 1987); the same "
                            "seed reproduces the same arrival timeline")
    serve.add_argument("--quick", action="store_true",
                       help="short horizons (CI smoke mode)")
    serve.add_argument("--scenario", action="append", default=None,
                       metavar="NAME",
                       help="run only this scenario (repeatable)")
    serve.add_argument("--list", action="store_true",
                       help="list the pinned scenarios and exit")
    serve.add_argument("--json", metavar="PATH", default=None,
                       help="also write the serve report as JSON")
    serve.add_argument("--force", action="store_true",
                       help="overwrite an existing --json file")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes for scenario fan-out; the "
                            "report is byte-identical at any job count "
                            "(default 1)")

    sweep = sub.add_parser(
        "sweep", help="run a (processors x seed) metric sweep")
    sweep.add_argument("--processors", default="1,2,3,4,5,6,7",
                       metavar="LIST",
                       help="comma-separated processor counts "
                            "(default 1,2,3,4,5,6,7 — the Table 1 axis)")
    sweep.add_argument("--seeds", default="1987,1988,1989", metavar="LIST",
                       help="comma-separated seeds (default 1987,1988,1989)")
    sweep.add_argument("--protocol", choices=sorted(available_protocols()),
                       default="firefly")
    sweep.add_argument("--generation", choices=("microvax", "cvax"),
                       default="microvax")
    sweep.add_argument("--warmup-cycles", type=int, default=None,
                       help="warm-up cycles per point")
    sweep.add_argument("--measure-cycles", type=int, default=None,
                       help="measured cycles per point")
    sweep.add_argument("--json", metavar="PATH", default=None,
                       help="write the sweep document as JSON "
                            "(sorted keys; byte-identical at any --jobs)")
    sweep.add_argument("--force", action="store_true",
                       help="overwrite an existing --json file")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for grid fan-out (default 1)")

    campaign = sub.add_parser(
        "campaign", help="declarative sweep campaigns with a "
                         "persistent, resumable result store")
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    def _campaign_common(sub_parser, with_spec=True):
        if with_spec:
            sub_parser.add_argument("spec", metavar="SPEC",
                                    help="campaign spec file "
                                         "(.yaml/.yml/.json)")
        sub_parser.add_argument("--store-dir", default=".campaign",
                                metavar="DIR",
                                help="result-store directory holding "
                                     "the ledgers (default .campaign)")

    for verb, blurb in (("run", "run a campaign, skipping trials the "
                                "ledger already holds"),
                        ("resume", "like run, but refuse to start "
                                   "from an empty ledger")):
        runp = campaign_sub.add_parser(verb, help=blurb)
        _campaign_common(runp)
        runp.add_argument("--jobs", type=int, default=1,
                          help="worker processes for trial fan-out "
                               "(default 1)")
        runp.add_argument("--report", metavar="PATH", default=None,
                          help="write the merged campaign report as "
                               "JSON (byte-identical for identical "
                               "ledger content at any --jobs)")
        runp.add_argument("--force", action="store_true",
                          help="overwrite an existing --report file")
        runp.add_argument("--print-golden", action="store_true",
                          help="print a ready-to-paste golden: section "
                               "pinning this run's digests")

    reportp = campaign_sub.add_parser(
        "report", help="render the static HTML regression dashboard")
    _campaign_common(reportp, with_spec=False)
    reportp.add_argument("--bench-dir", default=".", metavar="DIR",
                         help="directory holding the BENCH_<n>.json "
                              "trajectory (default .)")
    reportp.add_argument("--out", default="dashboard.html",
                         metavar="PATH",
                         help="output HTML path (default "
                              "dashboard.html)")
    reportp.add_argument("--force", action="store_true",
                         help="overwrite an existing --out file")

    gcp = campaign_sub.add_parser(
        "gc", help="compact a campaign ledger to currently-live rows")
    _campaign_common(gcp)

    return parser


def _add_telemetry_args(sub_parser) -> None:
    sub_parser.add_argument(
        "--telemetry-out", metavar="PATH", default=None,
        help="capture telemetry and write a Chrome-trace JSON "
             "(or JSONL if PATH ends in .jsonl)")
    sub_parser.add_argument(
        "--force", action="store_true",
        help="overwrite an existing --telemetry-out file")
    sub_parser.add_argument(
        "--sample-interval", type=int, default=DEFAULT_SAMPLE_INTERVAL,
        help="cycles between time-series samples "
             f"(default {DEFAULT_SAMPLE_INTERVAL})")
    sub_parser.add_argument(
        "--spans", action="store_true",
        help="trace MBus/miss spans; print percentile and "
             "critical-path tables")
    sub_parser.add_argument(
        "--divergence", action="store_true",
        help="continuously compare the analytic model against "
             "measured rates; print the residual report")


def _guard_output(path_str, force: bool, flag: str) -> None:
    """Refuse to overwrite an existing output file without ``--force``.

    Called before the simulation runs, so a long measurement is never
    wasted on a file that will not be written.  Shared by
    ``--telemetry-out``, sweep/chaos ``--json`` and the campaign
    report/dashboard outputs.
    """
    from pathlib import Path

    from repro.common.errors import ConfigurationError
    if path_str is not None and Path(path_str).exists() and not force:
        raise ConfigurationError(
            f"{flag} {path_str} already exists; pass --force to "
            f"overwrite it")


def _begin_telemetry(args, subject, for_kernel: bool):
    """(hub, sampler) when ``--telemetry-out`` was given, else (None, None)."""
    if getattr(args, "telemetry_out", None) is None:
        return None, None
    _guard_output(args.telemetry_out, args.force, "--telemetry-out")
    setup = telemetry_for_kernel if for_kernel else telemetry_for_machine
    hub, sampler = setup(subject, interval=args.sample_interval)
    sampler.start()
    return hub, sampler


def _begin_observatory(args, subject, hub):
    """(tracer, monitor) for ``--spans`` / ``--divergence``, else Nones.

    When a telemetry hub is already attached (``--telemetry-out``) the
    span tracer subscribes to it; otherwise it brings up its own
    non-buffering hub via :func:`repro.observatory.trace_spans`.
    """
    tracer = monitor = None
    if getattr(args, "spans", False):
        from repro.observatory import SpanTracer, trace_spans
        if hub is not None:
            tracer = SpanTracer(hub)
        else:
            _, tracer = trace_spans(subject)
    if getattr(args, "divergence", False):
        from repro.observatory import DivergenceMonitor
        monitor = DivergenceMonitor(subject)
        monitor.start()
    return tracer, monitor


def _finish_observatory(tracer, monitor) -> None:
    if tracer is not None:
        tracer.close()
        print()
        print(tracer.render())
    if monitor is not None:
        monitor.stop()
        print()
        print(monitor.report().render())


def _finish_telemetry(args, hub, sampler) -> None:
    """Stop sampling, export, and print the per-phase timeline."""
    if hub is None:
        return
    sampler.stop()
    fmt = write_export(args.telemetry_out, hub, [sampler],
                       fmt=getattr(args, "format", None))
    from repro.reporting import render_phase_timeline
    print()
    print(render_phase_timeline(hub, sampler))
    print()
    print(f"telemetry: {hub.emitted} events ({hub.dropped} dropped), "
          f"{sampler.dropped} samples aged out -> "
          f"{args.telemetry_out} [{fmt}]")


def _cmd_simulate(args) -> int:
    config = FireflyConfig(
        processors=args.processors,
        generation=Generation(args.generation),
        protocol=args.protocol,
        memory_megabytes=args.memory_mb,
        seed=args.seed)
    machine = FireflyMachine(config)
    if args.diagram:
        print(render_system_diagram(machine))
        print()
    hub, sampler = _begin_telemetry(args, machine, for_kernel=False)
    tracer, monitor = _begin_observatory(args, machine, hub)
    metrics = machine.run(warmup_cycles=args.warmup_cycles,
                          measure_cycles=args.measure_cycles)
    print(metrics.summary())
    if not args.skip_check:
        audited = CoherenceChecker(machine).check()
        print(f"coherence OK ({audited} cached words audited)")
    _finish_observatory(tracer, monitor)
    _finish_telemetry(args, hub, sampler)
    return 0


def _cmd_table1(args) -> int:
    model = FireflyAnalyticModel(AnalyticParameters(
        miss_rate=args.miss_rate,
        dirty_fraction=args.dirty_fraction,
        shared_write_fraction=args.shared_write_fraction))
    points = model.table1()
    table = TextTable([Column("NP", "d"), Column("L", ".2f"),
                       Column("TPI", ".1f"), Column("RP", ".2f"),
                       Column("TP", ".2f")])
    for point in points:
        table.add_row(int(point.processors), point.load, point.tpi,
                      point.relative_performance, point.total_performance)
    print(table.render())
    print(f"knee: ~{model.knee_processors()} processors before marginal "
          f"gain becomes unattractive")
    return 0


def _cmd_exerciser(args) -> int:
    kernel = build_exerciser(args.processors,
                             ExerciserParams(threads=args.threads),
                             seed=args.seed)
    hub, sampler = _begin_telemetry(args, kernel, for_kernel=True)
    tracer, monitor = _begin_observatory(args, kernel, hub)
    metrics = kernel.run(warmup_cycles=200_000,
                         measure_cycles=args.measure_cycles)
    expected = exerciser_expectations(args.processors)
    print(f"expected (analytic): reads {expected['reads_krate']:.0f}K/s  "
          f"writes {expected['writes_krate']:.0f}K/s  "
          f"total {expected['total_krate']:.0f}K/s")
    print(metrics.summary())
    print(f"migrations: {kernel.total_migrations}   context switches: "
          f"{kernel.stats['context_switches'].total}")
    _finish_observatory(tracer, monitor)
    _finish_telemetry(args, hub, sampler)
    return 0


def _cmd_fsm(args) -> int:
    print(render_state_diagram(args.protocol))
    return 0


def _counterexample_dict(counterexample) -> dict:
    from repro.verify.model import format_state
    return {
        "protocol": counterexample.protocol,
        "violation": str(counterexample.violation),
        "trace": [
            {"step": step, "stimulus": kind, "cache": cache,
             "state": format_state(state)}
            for step, ((kind, cache), state)
            in enumerate(counterexample.trace, start=1)
        ],
    }


def _cmd_verify(args) -> int:
    import json
    from pathlib import Path

    from repro.cache.protocols import PROTOCOL_DEFINITIONS
    from repro.verify import check_guards, lint_paths, verify_protocol

    _guard_output(args.json, args.force, "--json")
    document = {"protocols": {}, "lint": []}
    failures = 0

    if not args.lint_only:
        if args.protocol and not args.all_protocols:
            names = [args.protocol]
        else:
            names = sorted(available_protocols())
        for name in names:
            # Stage 1: the guard checker proves the declarative
            # definition total, deterministic, reachable and
            # fact-consistent before any state is explored.
            guard_findings = sorted(check_guards(PROTOCOL_DEFINITIONS[name]),
                                    key=lambda f: f.sort_key())
            entry = {
                "guard_findings": [
                    {"rule": f.rule, "state": f.state,
                     "stimulus": f.stimulus, "message": f.message}
                    for f in guard_findings],
            }
            for finding in guard_findings:
                print(f"guard: {finding}")
            if guard_findings:
                failures += 1
                entry["model"] = None
                print(f"[FAIL] {name}: {len(guard_findings)} guard "
                      f"finding(s); model checking skipped")
            else:
                # Stage 2: exhaustive model check of the global state
                # space (sim rig or pure DSL oracle).
                report = verify_protocol(name, caches=args.caches,
                                         include_dma=args.dma,
                                         oracle=args.oracle)
                print(report.render())
                entry["model"] = {
                    "ok": report.ok,
                    "oracle": args.oracle,
                    "caches": report.caches,
                    "states_explored": report.states_explored,
                    "transitions_taken": report.transitions_taken,
                    "structural_findings": [
                        str(f) for f in report.structural_findings],
                    "counterexample": (
                        None if report.counterexample is None
                        else _counterexample_dict(report.counterexample)),
                }
                if not report.ok:
                    failures += 1
            document["protocols"][name] = entry

    if not args.no_lint:
        package_root = Path(__file__).resolve().parent
        targets = args.lint_path or [package_root]
        findings = lint_paths(targets)
        for finding in findings:
            print(finding)
        print(f"lint: {len(findings)} finding(s) over "
              f"{', '.join(str(t) for t in targets)}")
        document["lint"] = [
            {"path": f.path, "line": f.line, "col": f.col,
             "rule": f.rule, "message": f.message}
            for f in findings]
        failures += len(findings)

    document["ok"] = failures == 0
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"verify: wrote {args.json}")

    if failures:
        print(f"verify: FAILED ({failures} problem(s))", file=sys.stderr)
        return 1
    print("verify: all checks passed")
    return 0


def _cmd_trace(args) -> int:
    from repro.reporting import render_phase_timeline
    if args.workload == "exerciser":
        kernel = build_exerciser(args.processors,
                                 ExerciserParams(threads=args.threads),
                                 seed=args.seed)
        hub, sampler = telemetry_for_kernel(kernel,
                                            interval=args.sample_interval)
        subject = kernel
    else:
        config = FireflyConfig(processors=args.processors,
                               protocol=args.protocol, seed=args.seed)
        machine = FireflyMachine(config)
        hub, sampler = telemetry_for_machine(machine,
                                             interval=args.sample_interval)
        subject = machine
    sampler.start()
    metrics = subject.run(warmup_cycles=args.warmup_cycles,
                          measure_cycles=args.measure_cycles)
    sampler.stop()
    fmt = write_export(args.out, hub, [sampler], fmt=args.format)
    print(render_phase_timeline(hub, sampler))
    print()
    print(metrics.summary())
    print()
    print(f"telemetry: {hub.emitted} events ({hub.dropped} dropped), "
          f"{sampler.dropped} samples aged out -> "
          f"{args.out} [{fmt}]")
    if fmt == "chrome":
        print("open in chrome://tracing or https://ui.perfetto.dev")
    return 0


def _cmd_postmortem(args) -> int:
    import json
    from pathlib import Path

    from repro.causal import (PINNED_DEADLOCK_SEED, extract_crash,
                              render_crash_report, run_pinned_deadlock)
    from repro.common.errors import ConfigurationError

    _guard_output(args.json, args.force, "--json")
    if args.scenario == "deadlock":
        seed = args.seed if args.seed is not None else PINNED_DEADLOCK_SEED
        report = run_pinned_deadlock(seed=seed)
    elif args.report is not None:
        document = json.loads(Path(args.report).read_text())
        report = extract_crash(document)
        if report is None:
            raise ConfigurationError(
                f"{args.report} holds no firefly-crash/1 report "
                f"(pass a crash JSON or a chaos report that captured "
                f"one)")
    else:
        raise ConfigurationError(
            "pass a crash JSON path or --scenario deadlock")
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(render_crash_report(report))
    if args.json is not None:
        print(f"postmortem: wrote {args.json}")
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.common.errors import ConfigurationError
    from repro.observatory import (bench_files, compare_bench, load_bench,
                                   run_suite, write_bench)

    out_dir = Path(args.out_dir)
    if not out_dir.is_dir():
        raise ConfigurationError(f"--out-dir {out_dir} is not a directory")
    if args.baseline is not None:
        previous = Path(args.baseline)
        if not previous.is_file():
            raise ConfigurationError(f"--baseline {previous} does not exist")
    else:
        baseline_dir = Path(args.baseline_dir) if args.baseline_dir \
            else out_dir
        if not baseline_dir.is_dir():
            raise ConfigurationError(
                f"--baseline-dir {baseline_dir} is not a directory")
        existing = bench_files(baseline_dir)
        previous = existing[-1] if existing else None

    document = run_suite(quick=args.quick, trials=args.trials,
                         scenarios=args.scenario,
                         skip_overhead=args.skip_overhead,
                         jobs=args.jobs,
                         engine=args.engine,
                         progress=print)
    path = write_bench(document, out_dir)
    print()
    table = TextTable([Column("scenario", align_left=True),
                       Column("ticks/s", ",.0f"), Column("noise", ".1%")])
    for name, entry in sorted(document["scenarios"].items()):
        table.add_row(name, entry["median_ticks_per_second"],
                      entry["noise"])
    print(table.render())
    overhead = document["overhead"]
    overhead_failed = False
    if overhead is not None:
        print(f"disabled-tracing overhead: "
              f"{(overhead['disabled_ratio'] - 1.0) * 100:+.1f}% "
              f"(budget {overhead['budget']:.0%})")
        if "recorder_ratio" in overhead:
            print(f"flight-recorder overhead: "
                  f"{(overhead['recorder_ratio'] - 1.0) * 100:+.1f}% "
                  f"(budget {overhead['recorder_budget']:.0%})")
        if not overhead["ok"]:
            overhead_failed = True
            print("error: observability overhead exceeds its wall-clock "
                  "budget", file=sys.stderr)
    print(f"bench: wrote {path}")

    if args.compare:
        if previous is None:
            print("bench: no previous BENCH file to compare against")
            return 1 if overhead_failed else 0
        report = compare_bench(load_bench(previous), document,
                               threshold=args.threshold)
        print()
        print(f"comparing against {previous.name}:")
        print(report.render())
        if not report.ok:
            return 1
    return 1 if overhead_failed else 0


def _cmd_chaos(args) -> int:
    from repro.faults import CHAOS_SCENARIOS, run_campaign

    if args.list:
        for scenario in CHAOS_SCENARIOS:
            print(f"{scenario.name:<16} {scenario.description}")
        return 0
    _guard_output(args.json, args.force, "--json")
    report = run_campaign(seed=args.seed, quick=args.quick,
                          scenarios=args.scenario, jobs=args.jobs)
    print(report.render())
    if args.json is not None:
        import json
        from pathlib import Path
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"chaos: wrote {args.json}")
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    from repro.serving import SERVE_SCENARIOS, run_serve_campaign

    if args.list:
        for scenario in SERVE_SCENARIOS:
            print(f"{scenario.name:<20} {scenario.description}")
        return 0
    _guard_output(args.json, args.force, "--json")
    report = run_serve_campaign(seed=args.seed, quick=args.quick,
                                scenarios=args.scenario, jobs=args.jobs)
    print(report.render())
    if args.json is not None:
        import json
        from pathlib import Path
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"serve: wrote {args.json}")
    return 0 if report.ok else 1


def _parse_int_list(text: str, flag: str) -> List[int]:
    from repro.common.errors import ConfigurationError
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ConfigurationError(f"{flag} expects comma-separated "
                                 f"integers, got {text!r}") from None
    if not values:
        raise ConfigurationError(f"{flag} is empty")
    return values


def _cmd_sweep(args) -> int:
    import json

    from repro.observatory.runner import (SWEEP_MEASURE, SWEEP_WARMUP,
                                          run_sweep)

    warmup = args.warmup_cycles if args.warmup_cycles is not None \
        else SWEEP_WARMUP
    measure = args.measure_cycles if args.measure_cycles is not None \
        else SWEEP_MEASURE
    _guard_output(args.json, args.force, "--json")
    document = run_sweep(
        _parse_int_list(args.processors, "--processors"),
        _parse_int_list(args.seeds, "--seeds"),
        protocol=args.protocol, generation=args.generation,
        warmup=warmup, measure=measure, jobs=args.jobs, progress=print)
    table = TextTable([Column("NP", "d"), Column("seed", "d"),
                       Column("bus load", ".4f"), Column("TPI", ".3f"),
                       Column("miss rate", ".4f")])
    for point in document["points"]:
        table.add_row(point["processors"], point["seed"],
                      point["bus_load"], point["mean_tpi"],
                      point["mean_miss_rate"])
    print(table.render())
    if args.json is not None:
        from pathlib import Path
        Path(args.json).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"sweep: wrote {args.json}")
    return 0


def _cmd_campaign(args) -> int:
    import json
    from pathlib import Path

    from repro.campaign import CampaignStore, load_spec

    store = CampaignStore(args.store_dir)

    if args.campaign_command in ("run", "resume"):
        from repro.campaign import golden_block, run_campaign_spec

        _guard_output(args.report, args.force, "--report")
        spec = load_spec(args.spec)
        run = run_campaign_spec(
            spec, store, jobs=args.jobs,
            resume_only=args.campaign_command == "resume",
            progress=print)
        print(f"campaign {spec.name}: {run.total} trial(s) merged "
              f"({run.ran} ran, {run.skipped} skipped via ledger)")
        if args.report is not None:
            Path(args.report).write_text(
                json.dumps(run.report, indent=2, sort_keys=True) + "\n")
            print(f"campaign: wrote {args.report}")
        if args.print_golden:
            print()
            print(golden_block(run))
        for label in run.golden_failures:
            verdict = run.golden[label]
            print(f"golden drift: {label} is {verdict['actual']}, "
                  f"pinned {verdict['pinned']}", file=sys.stderr)
        if run.golden:
            ok_count = sum(1 for v in run.golden.values()
                           if v["verdict"] == "ok")
            print(f"golden: {ok_count}/{len(run.golden)} pinned "
                  f"trial(s) match")
        return 0 if run.ok else 1

    if args.campaign_command == "report":
        from repro.observatory import bench_files, load_bench
        from repro.reporting import render_dashboard

        _guard_output(args.out, args.force, "--out")
        bench_dir = Path(args.bench_dir)
        docs = [(path.name, load_bench(path))
                for path in bench_files(bench_dir)]
        ledgers = [(name, list(store.load(name).rows.values()))
                   for name in store.campaigns()]
        Path(args.out).write_text(render_dashboard(docs, ledgers))
        trials = sum(len(rows) for _, rows in ledgers)
        print(f"campaign report: {len(docs)} BENCH file(s), "
              f"{len(ledgers)} ledger(s) ({trials} trial(s)) -> "
              f"{args.out}")
        return 0

    # gc
    from repro.campaign import gc_campaign

    spec = load_spec(args.spec)
    kept, dropped = gc_campaign(spec, store)
    print(f"campaign gc: {spec.name}: kept {kept} row(s), "
          f"dropped {dropped}")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "table1": _cmd_table1,
    "exerciser": _cmd_exerciser,
    "fsm": _cmd_fsm,
    "trace": _cmd_trace,
    "postmortem": _cmd_postmortem,
    "verify": _cmd_verify,
    "bench": _cmd_bench,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "sweep": _cmd_sweep,
    "campaign": _cmd_campaign,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (console script ``firefly-sim``)."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except Exception as exc:  # present config errors tidily
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
