"""The persistent, append-only campaign result store.

One campaign owns one JSONL ledger file (``<name>.ledger.jsonl``) in
the store directory.  Every completed trial appends exactly one row::

    {"schema": "firefly-campaign-ledger/1", "campaign": "quick",
     "key": "sha256:...", "label": "sweep/np1/firefly/microvax/s1987",
     "kind": "sweep", "seed": 1987, "params": {...},
     "git_sha": "...", "spec_hash": "sha256:...", "result": {...}}

The ``key`` is the content hash of ``(kind, params, seed, git_sha)``
computed by :meth:`repro.campaign.spec.CampaignSpec.expand` — the
identity the resumable runner matches on.  Append-only means a
re-run never rewrites history: duplicate keys are legal in the file
and the *last* row wins on load (results are deterministic, so which
row wins cannot change a merged report).

Robustness contract: a campaign killed mid-append leaves a torn final
line; :meth:`CampaignStore.load` skips unparsable lines (counting
them) instead of refusing the whole ledger, so the interrupted trial
simply re-runs.  Rows written before the provenance stamp existed may
lack ``schema``/``git_sha``/``spec_hash``; loaders tolerate their
absence.

``gc`` compacts a ledger in place: duplicates collapse to the winning
row and rows whose keys the current spec expansion no longer produces
(stale parameters, superseded git revisions) are dropped.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.common.provenance import canonical_json

LEDGER_SCHEMA = "firefly-campaign-ledger/1"

LEDGER_SUFFIX = ".ledger.jsonl"


@dataclass
class LedgerLoad:
    """What :meth:`CampaignStore.load` found in one ledger file."""

    rows: Dict[str, Dict]   # key -> winning row, in first-seen order
    total_rows: int         # parsable rows, duplicates included
    corrupt_lines: int      # torn/unparsable lines skipped


class CampaignStore:
    """Ledger files for every campaign under one directory."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)

    def ledger_path(self, campaign: str) -> Path:
        return self.directory / f"{campaign}{LEDGER_SUFFIX}"

    def campaigns(self) -> List[str]:
        """Campaign names with a ledger in the store, sorted."""
        if not self.directory.is_dir():
            return []
        return sorted(path.name[:-len(LEDGER_SUFFIX)]
                      for path in self.directory.iterdir()
                      if path.name.endswith(LEDGER_SUFFIX))

    # -- reading ------------------------------------------------------

    def load(self, campaign: str) -> LedgerLoad:
        """All completed trials of a campaign, last row winning per key."""
        path = self.ledger_path(campaign)
        rows: Dict[str, Dict] = {}
        total = corrupt = 0
        if not path.is_file():
            return LedgerLoad(rows=rows, total_rows=0, corrupt_lines=0)
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    corrupt += 1
                    continue
                if not isinstance(row, dict) \
                        or not isinstance(row.get("key"), str) \
                        or "result" not in row:
                    corrupt += 1
                    continue
                total += 1
                rows[row["key"]] = row
        return LedgerLoad(rows=rows, total_rows=total,
                          corrupt_lines=corrupt)

    # -- writing ------------------------------------------------------

    def append(self, campaign: str, row: Dict) -> None:
        """Durably append one completed-trial row.

        The row is written as one canonical-JSON line and flushed to
        the OS before returning, so a kill immediately after a trial
        completes can tear at most the row being written, never a row
        the caller was already told about.

        If a previous kill tore the final line mid-write the file ends
        without a newline; appending straight after the fragment would
        weld the new row onto it and lose both, so the torn tail is
        healed with a newline first (the fragment then reads as one
        corrupt line, which ``load`` already skips).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.ledger_path(campaign)
        with path.open("a+b") as raw:
            raw.seek(0, os.SEEK_END)
            if raw.tell() > 0:
                raw.seek(-1, os.SEEK_END)
                if raw.read(1) != b"\n":
                    raw.write(b"\n")
        with path.open("a") as handle:
            handle.write(canonical_json(row) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def make_row(self, campaign: str, trial, git_sha: Optional[str],
                 spec_hash: str, result) -> Dict:
        """The ledger row for one completed trial."""
        return {
            "schema": LEDGER_SCHEMA,
            "campaign": campaign,
            "key": trial.key,
            "label": trial.label,
            "kind": trial.kind,
            "seed": trial.seed,
            "params": dict(trial.params),
            "git_sha": git_sha,
            "spec_hash": spec_hash,
            "result": result,
        }

    # -- garbage collection -------------------------------------------

    def gc(self, campaign: str, live_keys: Iterable[str]
           ) -> Tuple[int, int]:
        """Compact a ledger to the winning row of each live key.

        Returns ``(kept, dropped)`` row counts; ``dropped`` includes
        duplicates, rows for keys outside ``live_keys`` and torn
        lines.  The rewrite goes through a temp file and an atomic
        rename so an interrupted gc never loses the ledger.
        """
        path = self.ledger_path(campaign)
        if not path.is_file():
            raise ConfigurationError(
                f"no ledger for campaign {campaign!r} in "
                f"{self.directory}")
        live: Set[str] = set(live_keys)
        load = self.load(campaign)
        kept = [row for key, row in load.rows.items() if key in live]
        dropped = load.total_rows + load.corrupt_lines - len(kept)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with tmp.open("w") as handle:
            for row in kept:
                handle.write(canonical_json(row) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return len(kept), dropped
