"""Declarative campaign specifications (``firefly-campaign/1``).

A campaign spec is a YAML or JSON document describing a *matrix* of
trials — the §5.2 style sweep campaign written down instead of typed
into ad-hoc CLI loops.  Top level::

    schema: firefly-campaign/1
    name: quick-example
    description: one line about why this campaign exists
    seeds: [1987, 1988]          # default seed axis for every group
    matrix:
      - kind: sweep              # (processors x protocol x seed) grid
        processors: [1, 2, 4]
        protocol: [firefly, write-through]
        generation: microvax
        warmup: 2000
        measure: 8000
        exclude:
          - {protocol: write-through, processors: 1}
      - kind: bench              # pinned observatory scenarios
        scenarios: [exerciser-1cpu]
        quick: true
        engine: [wheel, heap]    # optional event-engine axis
      - kind: vector             # vectorized §5.2 statistical runs
        processors: [2, 4, 6]
        instructions: 100000
      - kind: chaos              # seeded fault-injection scenarios
        scenarios: [bus-parity]
        quick: true
      - kind: serve              # resilient-serving SLO scenarios
        scenarios: [steady-poisson]
        quick: true
    golden:                      # optional pinned metric digests
      sweep/np1/firefly/microvax/s1987: sha256:0123456789abcdef

Every list-valued parameter is an *axis* and expands by cross product
(in document order, seeds last), ``exclude`` entries remove any trial
whose parameters match every key of the entry, and each surviving trial
gets a deterministic human label plus a content-hashed key of
``(kind, params, seed, git_sha)`` — the resume identity used by the
persistent ledger (:mod:`repro.campaign.store`).

The ``probe`` kind is a deliberately trivial trial (a pure function of
its seed) used by the resume/interrupt test-suite and by smoke
campaigns; it can be told to fail for chosen seeds through an
environment variable, which is how the tests kill a campaign mid-run
without making two specs that would no longer share trial keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.provenance import content_hash

CAMPAIGN_SCHEMA = "firefly-campaign/1"

#: The trial kinds a matrix group may declare.
TRIAL_KINDS = ("sweep", "bench", "chaos", "serve", "vector", "probe")

_COMMON_KEYS = {"kind", "seeds", "exclude"}
_GROUP_KEYS = {
    "sweep": _COMMON_KEYS | {"processors", "protocol", "generation",
                             "warmup", "measure"},
    "bench": _COMMON_KEYS | {"scenarios", "quick", "engine"},
    "chaos": _COMMON_KEYS | {"scenarios", "quick"},
    "serve": _COMMON_KEYS | {"scenarios", "quick"},
    "vector": _COMMON_KEYS | {"processors", "instructions", "backend"},
    "probe": _COMMON_KEYS | {"name", "offset", "fail_env", "spin"},
}


@dataclass(frozen=True)
class CampaignTrial:
    """One fully-resolved cell of the campaign matrix."""

    label: str
    kind: str
    seed: int
    params: Dict
    key: str

    def worker_spec(self) -> Tuple:
        """The picklable spec handed to the pool worker."""
        return (self.kind, self.label, self.seed, dict(self.params))


@dataclass
class CampaignSpec:
    """A validated campaign document."""

    name: str
    description: str
    seeds: List[int]
    groups: List[Dict]
    golden: Dict[str, str] = field(default_factory=dict)

    @property
    def spec_hash(self) -> str:
        """Content hash of the whole normalised spec."""
        return content_hash({
            "schema": CAMPAIGN_SCHEMA,
            "name": self.name,
            "description": self.description,
            "seeds": self.seeds,
            "matrix": self.groups,
            "golden": self.golden,
        })

    def expand(self, git_sha: Optional[str]) -> List[CampaignTrial]:
        """All trials in deterministic matrix order.

        ``git_sha`` participates in every trial key: a result is only
        reusable by the resumable runner while the code that produced
        it is unchanged.  ``None`` (not a checkout) hashes as the
        literal string ``"unknown"`` so artifacts stay producible.
        """
        sha = git_sha or "unknown"
        trials: List[CampaignTrial] = []
        seen: Dict[str, str] = {}
        for index, group in enumerate(self.groups):
            for label, seed, params in _expand_group(group, self.seeds):
                if label in seen:
                    raise ConfigurationError(
                        f"matrix[{index}] produces duplicate trial "
                        f"{label!r}; merge the overlapping groups")
                seen[label] = label
                key = content_hash({"kind": group["kind"],
                                    "params": params, "seed": seed,
                                    "git_sha": sha})
                trials.append(CampaignTrial(label=label,
                                            kind=group["kind"],
                                            seed=seed, params=params,
                                            key=key))
        return trials


# ---------------------------------------------------------------------------
# loading and validation


def load_spec(path) -> CampaignSpec:
    """Load and validate a campaign spec file (YAML or JSON by suffix)."""
    path = Path(path)
    if not path.is_file():
        raise ConfigurationError(f"campaign spec {path} does not exist")
    text = path.read_text()
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # pragma: no cover - PyYAML is usually present
            raise ConfigurationError(
                f"{path}: PyYAML is not installed; write the campaign "
                f"spec as JSON instead") from None
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ConfigurationError(f"{path}: invalid YAML: {exc}") \
                from None
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path}: invalid JSON: {exc}") \
                from None
    return parse_spec(data, source=str(path))


def parse_spec(data, source: str = "<spec>") -> CampaignSpec:
    """Validate a raw spec mapping into a :class:`CampaignSpec`."""
    if not isinstance(data, dict):
        raise ConfigurationError(f"{source}: campaign spec must be a "
                                 f"mapping, got {type(data).__name__}")
    schema = data.get("schema")
    if schema != CAMPAIGN_SCHEMA:
        raise ConfigurationError(
            f"{source}: schema is {schema!r}, expected "
            f"{CAMPAIGN_SCHEMA!r}")
    unknown = sorted(set(data) - {"schema", "name", "description",
                                  "seeds", "matrix", "golden"})
    if unknown:
        raise ConfigurationError(
            f"{source}: unknown top-level key(s): {', '.join(unknown)}")
    name = data.get("name")
    if not isinstance(name, str) or not name \
            or any(c in name for c in "/\\ \t\n"):
        raise ConfigurationError(
            f"{source}: name must be a non-empty string without "
            f"whitespace or path separators (it names the ledger file)")
    description = data.get("description", "")
    if not isinstance(description, str):
        raise ConfigurationError(f"{source}: description must be a string")
    seeds = _validate_seeds(data.get("seeds", [1987]), f"{source}: seeds")
    matrix = data.get("matrix")
    if not isinstance(matrix, list) or not matrix:
        raise ConfigurationError(
            f"{source}: matrix must be a non-empty list of trial groups")
    groups = [_validate_group(group, f"{source}: matrix[{i}]")
              for i, group in enumerate(matrix)]
    golden = _validate_golden(data.get("golden", {}), f"{source}: golden")
    spec = CampaignSpec(name=name, description=description, seeds=seeds,
                        groups=groups, golden=golden)
    labels = {trial.label for trial in spec.expand("unknown")}
    missing = sorted(set(golden) - labels)
    if missing:
        raise ConfigurationError(
            f"{source}: golden pins trial(s) the matrix never produces: "
            f"{', '.join(missing)}")
    return spec


def _validate_seeds(value, where: str) -> List[int]:
    if not isinstance(value, list) or not value \
            or not all(isinstance(s, int) and not isinstance(s, bool)
                       for s in value):
        raise ConfigurationError(f"{where} must be a non-empty list of "
                                 f"integers")
    if len(set(value)) != len(value):
        raise ConfigurationError(f"{where} contains duplicate seeds")
    return list(value)


def _validate_golden(value, where: str) -> Dict[str, str]:
    if not isinstance(value, dict):
        raise ConfigurationError(f"{where} must be a mapping of trial "
                                 f"label -> digest")
    for label, digest in value.items():
        if not isinstance(label, str) or not isinstance(digest, str) \
                or not digest.startswith("sha256:"):
            raise ConfigurationError(
                f"{where}: entry {label!r} must map a trial label to a "
                f"'sha256:...' digest")
    return dict(value)


def _validate_group(group, where: str) -> Dict:
    if not isinstance(group, dict):
        raise ConfigurationError(f"{where}: trial group must be a mapping")
    kind = group.get("kind")
    if kind not in TRIAL_KINDS:
        raise ConfigurationError(
            f"{where}: kind must be one of {', '.join(TRIAL_KINDS)}; "
            f"got {kind!r}")
    unknown = sorted(set(group) - _GROUP_KEYS[kind])
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown key(s) for kind {kind!r}: "
            f"{', '.join(unknown)} (allowed: "
            f"{', '.join(sorted(_GROUP_KEYS[kind]))})")
    validated: Dict = {"kind": kind}
    if "seeds" in group:
        validated["seeds"] = _validate_seeds(group["seeds"],
                                             f"{where}: seeds")
    validator = {"sweep": _validate_sweep, "bench": _validate_bench,
                 "chaos": _validate_chaos, "serve": _validate_serve,
                 "vector": _validate_vector, "probe": _validate_probe}[kind]
    validated.update(validator(group, where))
    validated["exclude"] = _validate_exclude(group.get("exclude", []),
                                             validated, where)
    return validated


def _as_list(value) -> List:
    return list(value) if isinstance(value, list) else [value]


def _validate_sweep(group: Dict, where: str) -> Dict:
    from repro.cache.protocols import available_protocols
    from repro.observatory.runner import SWEEP_MEASURE, SWEEP_WARMUP

    processors = _as_list(group.get("processors", [1, 2, 3, 4, 5]))
    if not processors or not all(isinstance(p, int) and p >= 1
                                 for p in processors):
        raise ConfigurationError(f"{where}: processors must be "
                                 f"integer(s) >= 1")
    protocols = [str(p) for p in _as_list(group.get("protocol",
                                                    "firefly"))]
    known = set(available_protocols())
    bad = sorted(set(protocols) - known)
    if bad:
        raise ConfigurationError(
            f"{where}: unknown protocol(s) {', '.join(bad)}; available: "
            f"{', '.join(sorted(known))}")
    generation = group.get("generation", "microvax")
    if generation not in ("microvax", "cvax"):
        raise ConfigurationError(f"{where}: generation must be "
                                 f"'microvax' or 'cvax'")
    warmup = group.get("warmup", SWEEP_WARMUP)
    measure = group.get("measure", SWEEP_MEASURE)
    for label, cycles in (("warmup", warmup), ("measure", measure)):
        if not isinstance(cycles, int) or cycles < 0 \
                or (label == "measure" and cycles < 1):
            raise ConfigurationError(f"{where}: {label} must be a "
                                     f"non-negative integer")
    return {"processors": processors, "protocol": protocols,
            "generation": generation, "warmup": warmup,
            "measure": measure}


def _validate_scenarios(group: Dict, where: str, names: List[str]) -> Dict:
    scenarios = [str(s) for s in _as_list(group.get("scenarios", names))]
    unknown = sorted(set(scenarios) - set(names))
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown scenario(s) {', '.join(unknown)}; "
            f"pinned: {', '.join(names)}")
    quick = group.get("quick", True)
    if not isinstance(quick, bool):
        raise ConfigurationError(f"{where}: quick must be a boolean")
    return {"scenarios": scenarios, "quick": quick}


def _validate_bench(group: Dict, where: str) -> Dict:
    from repro.common.events import ENGINES
    from repro.observatory.bench import scenario_names

    validated = _validate_scenarios(group, where, scenario_names())
    if "engine" in group:
        # An explicit engine axis: cross-product like any other axis.
        # Omitted entirely (the compatible default) the trials keep the
        # worker's default engine and their pre-engine-era labels, so
        # existing golden pins and ledger keys stay resolvable.
        engines = [str(e) for e in _as_list(group["engine"])]
        bad = sorted(set(engines) - set(ENGINES))
        if bad:
            raise ConfigurationError(
                f"{where}: unknown engine(s) {', '.join(bad)}; "
                f"known: {', '.join(ENGINES)}")
        if len(set(engines)) != len(engines):
            raise ConfigurationError(f"{where}: duplicate engines")
        validated["engine"] = engines
    return validated


def _validate_vector(group: Dict, where: str) -> Dict:
    processors = _as_list(group.get("processors", [2, 4, 6]))
    if not processors or not all(isinstance(p, int) and p >= 1
                                 for p in processors):
        raise ConfigurationError(f"{where}: processors must be "
                                 f"integer(s) >= 1")
    instructions = group.get("instructions", 100_000)
    if not isinstance(instructions, int) or instructions < 1:
        raise ConfigurationError(f"{where}: instructions must be a "
                                 f"positive integer")
    validated = {"processors": processors, "instructions": instructions}
    backend = group.get("backend")
    if backend is not None:
        from repro.trace.vectorized import BACKENDS

        if backend not in BACKENDS:
            raise ConfigurationError(
                f"{where}: backend must be one of {', '.join(BACKENDS)}; "
                f"got {backend!r}")
        validated["backend"] = backend
    return validated


def _validate_chaos(group: Dict, where: str) -> Dict:
    from repro.faults.chaos import chaos_scenario_names

    return _validate_scenarios(group, where, chaos_scenario_names())


def _validate_serve(group: Dict, where: str) -> Dict:
    from repro.serving.engine import serve_scenario_names

    return _validate_scenarios(group, where, serve_scenario_names())


def _validate_probe(group: Dict, where: str) -> Dict:
    name = group.get("name", "probe")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(f"{where}: name must be a non-empty "
                                 f"string")
    offset = group.get("offset", 0)
    spin = group.get("spin", 0)
    if not isinstance(offset, int) or not isinstance(spin, int) \
            or spin < 0:
        raise ConfigurationError(f"{where}: offset/spin must be integers "
                                 f"(spin >= 0)")
    validated = {"name": name, "offset": offset, "spin": spin}
    fail_env = group.get("fail_env")
    if fail_env is not None:
        if not isinstance(fail_env, str) or not fail_env:
            raise ConfigurationError(f"{where}: fail_env must be a "
                                     f"non-empty string")
        validated["fail_env"] = fail_env
    return validated


def _validate_exclude(value, validated: Dict, where: str) -> List[Dict]:
    if not isinstance(value, list):
        raise ConfigurationError(f"{where}: exclude must be a list of "
                                 f"mappings")
    axis_keys = set(_axis_names(validated)) | {"seed"}
    entries: List[Dict] = []
    for i, entry in enumerate(value):
        if not isinstance(entry, dict) or not entry:
            raise ConfigurationError(f"{where}: exclude[{i}] must be a "
                                     f"non-empty mapping")
        unknown = sorted(set(entry) - axis_keys)
        if unknown:
            raise ConfigurationError(
                f"{where}: exclude[{i}] names unknown axis(es): "
                f"{', '.join(unknown)} (axes: "
                f"{', '.join(sorted(axis_keys))})")
        entries.append(dict(entry))
    return entries


# ---------------------------------------------------------------------------
# expansion


def _axis_names(group: Dict) -> List[str]:
    """The parameter names that expand for this group, seeds excluded."""
    return {"sweep": ["processors", "protocol"],
            "bench": ["scenarios", "engine"], "chaos": ["scenarios"],
            "serve": ["scenarios"], "vector": ["processors"],
            "probe": []}[group["kind"]]


def _excluded(entry_params: Dict, excludes: Sequence[Dict]) -> bool:
    return any(all(entry_params.get(key) == value
                   for key, value in entry.items())
               for entry in excludes)


def _expand_group(group: Dict, default_seeds: Sequence[int]
                  ) -> List[Tuple[str, int, Dict]]:
    """(label, seed, params) triples in deterministic matrix order."""
    kind = group["kind"]
    seeds = group.get("seeds", list(default_seeds))
    excludes = group.get("exclude", [])
    out: List[Tuple[str, int, Dict]] = []
    if kind == "sweep":
        for processors in group["processors"]:
            for protocol in group["protocol"]:
                for seed in seeds:
                    match = {"processors": processors,
                             "protocol": protocol, "seed": seed}
                    if _excluded(match, excludes):
                        continue
                    params = {"processors": processors,
                              "protocol": protocol,
                              "generation": group["generation"],
                              "warmup": group["warmup"],
                              "measure": group["measure"]}
                    label = (f"sweep/np{processors}/{protocol}/"
                             f"{group['generation']}/s{seed}")
                    out.append((label, seed, params))
    elif kind in ("bench", "chaos", "serve"):
        mode = "quick" if group["quick"] else "full"
        # The engine axis is bench-only and optional; when omitted the
        # labels keep their pre-engine shape so existing golden pins
        # and ledger keys survive the axis's introduction.
        engines = group.get("engine") or [None]
        for scenario in group["scenarios"]:
            for engine in engines:
                for seed in seeds:
                    match = {"scenarios": scenario, "seed": seed}
                    if engine is not None:
                        match["engine"] = engine
                    if _excluded(match, excludes):
                        continue
                    params = {"scenario": scenario,
                              "quick": group["quick"]}
                    label = f"{kind}/{scenario}/{mode}"
                    if engine is not None:
                        params["engine"] = engine
                        label += f"/{engine}"
                    out.append((f"{label}/s{seed}", seed, params))
    elif kind == "vector":
        for processors in group["processors"]:
            for seed in seeds:
                match = {"processors": processors, "seed": seed}
                if _excluded(match, excludes):
                    continue
                params = {"processors": processors,
                          "instructions": group["instructions"]}
                if "backend" in group:
                    params["backend"] = group["backend"]
                out.append((f"vector/np{processors}"
                            f"/i{group['instructions']}/s{seed}",
                            seed, params))
    else:  # probe
        for seed in seeds:
            if _excluded({"seed": seed}, excludes):
                continue
            params = {key: group[key]
                      for key in ("name", "offset", "spin", "fail_env")
                      if key in group}
            out.append((f"probe/{group['name']}/s{seed}", seed, params))
    return out
