"""The resumable campaign runner.

``firefly-sim campaign run SPEC`` flows through here:

1. :func:`repro.campaign.spec.load_spec` validates the document and
   expands the matrix into content-keyed trials;
2. the :class:`~repro.campaign.store.CampaignStore` ledger is loaded
   and every trial whose key already has a result is **skipped**;
3. the remaining trials fan out through the deterministic executor
   (:func:`repro.observatory.runner.run_ordered`), each completed
   result appended durably to the ledger *as it is collected* — a
   crash, Ctrl-C or failing trial loses at most the in-flight work;
4. the merged report is rebuilt from the ledger in matrix order.

Because every trial is a pure function of its spec and seed, the
merged report contains no wall-clock or host fields, so an interrupted
and resumed campaign serialises **byte-identically** to an
uninterrupted one at any ``--jobs`` count (the resume test-suite pins
this).  Bench trials therefore keep only their simulated fields here;
throughput measurement stays the job of ``firefly-sim bench``.

Golden sections turn silent drift into a named failure: the spec pins
``label -> sha256 digest`` of a trial's result, every run recomputes
the digests, and any mismatch fails the campaign naming the exact
(scenario, seed) that moved.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.provenance import content_hash, git_sha
from repro.campaign.spec import CampaignSpec, CampaignTrial
from repro.campaign.store import CampaignStore

REPORT_SCHEMA = "firefly-campaign-report/1"


# ---------------------------------------------------------------------------
# the pool worker


def campaign_trial(spec: Tuple[str, str, int, Dict]):
    """Run one campaign trial: ``(kind, label, seed, params)``.

    Module-level so it pickles by reference into worker processes.
    Results are plain JSON-safe data: chaos outcomes are serialised in
    the worker, bench trials drop their host wall-clock fields (the
    campaign report must stay byte-deterministic).
    """
    kind, _label, seed, params = spec
    if kind == "sweep":
        from repro.observatory.runner import sweep_point

        return sweep_point((params["processors"], params["protocol"],
                            params["generation"], seed,
                            params["warmup"], params["measure"]))
    if kind == "bench":
        from repro.observatory.runner import bench_trial

        spec_tuple = (params["scenario"], params["quick"], seed)
        if params.get("engine"):
            # Engine rides in the worker spec; it never changes the
            # simulated result (the equivalence contract), so trials
            # with and without the axis stay digest-compatible.
            spec_tuple += (params["engine"],)
        record = bench_trial(spec_tuple)
        return {"seed": record["seed"], "cycles": record["cycles"],
                "metrics": record["metrics"]}
    if kind == "chaos":
        from repro.observatory.runner import chaos_scenario

        outcome = chaos_scenario((params["scenario"], params["quick"],
                                  seed))
        return outcome.to_dict()
    if kind == "serve":
        from repro.observatory.runner import serve_scenario

        outcome = serve_scenario((params["scenario"], params["quick"],
                                  seed))
        return outcome.to_dict()
    if kind == "vector":
        from repro.trace.vectorized import run_vectorized

        result = run_vectorized(params["processors"],
                                params["instructions"], seed,
                                backend=params.get("backend"))
        metrics = result.metrics()
        # The backend is a host property (numpy present or not), and
        # the counts are backend-identical by construction; drop it so
        # the report and golden digests stay host-independent.
        metrics.pop("backend", None)
        return {"seed": seed, "cycles": result.ticks, "metrics": metrics}
    if kind == "probe":
        return _probe_trial(seed, params)
    raise ConfigurationError(f"unknown trial kind {kind!r}")


def _probe_trial(seed: int, params: Dict) -> Dict:
    """The trivial self-test trial: a pure function of its seed.

    ``fail_env`` names an environment variable holding a
    comma-separated seed list; a listed seed raises, which is how the
    resume tests kill a campaign mid-run without changing the spec
    (and thus the trial keys) between the two runs.  ``spin`` adds
    deterministic busy work so interrupt tests have time to interrupt.
    """
    fail_env = params.get("fail_env")
    if fail_env:
        listed = {part.strip()
                  for part in os.environ.get(fail_env, "").split(",")
                  if part.strip()}
        if str(seed) in listed:
            raise SimulationError(
                f"probe fault injected for seed {seed} (via ${fail_env})")
    value = seed * seed + params.get("offset", 0)
    for _ in range(params.get("spin", 0)):
        value = (value * 1103515245 + 12345) % (1 << 31)
    return {"seed": seed, "value": value}


def _describe(spec: Tuple[str, str, int, Dict]) -> str:
    return spec[1]


# ---------------------------------------------------------------------------
# running


@dataclass
class CampaignRun:
    """Everything one ``campaign run`` produced."""

    spec: CampaignSpec
    report: Dict
    total: int
    ran: int
    skipped: int
    golden: Dict[str, Dict] = field(default_factory=dict)

    @property
    def golden_failures(self) -> List[str]:
        return [label for label, verdict in sorted(self.golden.items())
                if verdict["verdict"] != "ok"]

    @property
    def ok(self) -> bool:
        return not self.golden_failures


def run_campaign_spec(spec: CampaignSpec, store: CampaignStore,
                      jobs: int = 1, resume_only: bool = False,
                      sha: Optional[str] = None,
                      progress: Optional[Callable[[str], None]] = None
                      ) -> CampaignRun:
    """Run (or resume — the same thing) a validated campaign spec.

    ``resume_only`` is the ``campaign resume`` contract: refuse to
    start from nothing, so a typo'd store directory cannot silently
    re-run a week of trials.
    """
    if sha is None:
        sha = git_sha()
    trials = spec.expand(sha)
    load = store.load(spec.name)
    if resume_only and not store.ledger_path(spec.name).is_file():
        raise ConfigurationError(
            f"campaign {spec.name!r} has no ledger in {store.directory}; "
            f"use 'campaign run' to start it")
    if load.corrupt_lines and progress is not None:
        progress(f"ledger: skipped {load.corrupt_lines} torn line(s) "
                 f"from an interrupted run")
    pending = [trial for trial in trials if trial.key not in load.rows]
    if progress is not None:
        progress(f"campaign {spec.name}: {len(trials)} trial(s), "
                 f"{len(trials) - len(pending)} cached, "
                 f"running {len(pending)} (jobs={max(1, jobs or 1)})")

    if pending:
        from repro.observatory.runner import run_ordered

        by_label = {trial.label: trial for trial in pending}

        def persist(worker_spec, result) -> None:
            trial = by_label[worker_spec[1]]
            store.append(spec.name, store.make_row(
                spec.name, trial, sha, spec.spec_hash, result))
            if progress is not None:
                progress(f"  done {trial.label}")

        run_ordered([trial.worker_spec() for trial in pending],
                    campaign_trial, jobs=jobs, describe=_describe,
                    on_result=persist)

    merged = store.load(spec.name).rows
    missing = [trial.label for trial in trials
               if trial.key not in merged]
    if missing:
        raise SimulationError(
            f"campaign {spec.name}: {len(missing)} trial(s) missing "
            f"after the run: {', '.join(missing[:5])}")
    results = {trial.key: merged[trial.key]["result"]
               for trial in trials}
    golden = check_golden(spec, trials, results)
    report = build_report(spec, trials, results, golden, sha)
    return CampaignRun(spec=spec, report=report, total=len(trials),
                       ran=len(pending), skipped=len(trials)
                       - len(pending), golden=golden)


def check_golden(spec: CampaignSpec, trials: List[CampaignTrial],
                 results: Dict[str, object]) -> Dict[str, Dict]:
    """Per-pinned-label verdicts: ``ok`` or ``drift``.

    Labels pinned but absent from the expansion are caught at parse
    time, so every golden entry resolves to a trial here.
    """
    by_label = {trial.label: trial for trial in trials}
    verdicts: Dict[str, Dict] = {}
    for label, pinned in sorted(spec.golden.items()):
        trial = by_label[label]
        actual = content_hash(results[trial.key])
        verdicts[label] = {
            "pinned": pinned,
            "actual": actual,
            "verdict": "ok" if actual == pinned else "drift",
        }
    return verdicts


def build_report(spec: CampaignSpec, trials: List[CampaignTrial],
                 results: Dict[str, object], golden: Dict[str, Dict],
                 sha: Optional[str]) -> Dict:
    """The merged campaign report (deterministic, JSON-safe)."""
    return {
        "schema": REPORT_SCHEMA,
        "name": spec.name,
        "description": spec.description,
        "git_sha": sha,
        "spec_hash": spec.spec_hash,
        "golden": golden,
        "trials": [{
            "key": trial.key,
            "label": trial.label,
            "kind": trial.kind,
            "seed": trial.seed,
            "params": dict(trial.params),
            "result": results[trial.key],
        } for trial in trials],
    }


def golden_block(run: CampaignRun) -> str:
    """A ready-to-paste ``golden:`` section pinning the current run."""
    lines = ["golden:"]
    for entry in run.report["trials"]:
        lines.append(f"  {entry['label']}: "
                     f"{content_hash(entry['result'])}")
    return "\n".join(lines)


def gc_campaign(spec: CampaignSpec, store: CampaignStore,
                sha: Optional[str] = None) -> Tuple[int, int]:
    """Drop ledger rows the current spec + revision can no longer use."""
    if sha is None:
        sha = git_sha()
    live = [trial.key for trial in spec.expand(sha)]
    return store.gc(spec.name, live)
