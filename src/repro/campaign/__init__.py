"""Campaign manager: declarative sweeps with a persistent result store.

The §5.2 analysis of the Firefly paper is a *campaign* — a matrix of
runs over CPU count, protocol and workload — and this package makes
that a first-class, resumable artifact instead of a shell loop:

- :mod:`repro.campaign.spec` — the ``firefly-campaign/1`` YAML/JSON
  document: matrix groups (sweep / bench / chaos / probe), per-axis
  expansion, exclusion rules, and pinned ``golden`` digests;
- :mod:`repro.campaign.store` — the append-only JSONL ledger keyed by
  content hashes of (kind, params, seed, git_sha), which is what makes
  ``firefly-sim campaign run`` resumable and its merged report
  byte-identical to an uninterrupted run;
- :mod:`repro.campaign.engine` — expansion → skip-completed → ordered
  fan-out → durable append → merged report → golden verdicts.

The regression-observatory dashboard over BENCH_* trajectories and
campaign ledgers lives in :mod:`repro.reporting.html`.  See
docs/CAMPAIGNS.md.
"""

from repro.campaign.engine import (
    REPORT_SCHEMA,
    CampaignRun,
    build_report,
    campaign_trial,
    check_golden,
    gc_campaign,
    golden_block,
    run_campaign_spec,
)
from repro.campaign.spec import (
    CAMPAIGN_SCHEMA,
    TRIAL_KINDS,
    CampaignSpec,
    CampaignTrial,
    load_spec,
    parse_spec,
)
from repro.campaign.store import (
    LEDGER_SCHEMA,
    CampaignStore,
    LedgerLoad,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "LEDGER_SCHEMA",
    "REPORT_SCHEMA",
    "TRIAL_KINDS",
    "CampaignRun",
    "CampaignSpec",
    "CampaignStore",
    "CampaignTrial",
    "LedgerLoad",
    "build_report",
    "campaign_trial",
    "check_golden",
    "gc_campaign",
    "golden_block",
    "load_spec",
    "parse_spec",
    "run_campaign_spec",
]
