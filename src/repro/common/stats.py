"""Statistics primitives used by every model component.

The paper reports rates (K references/second), ratios (miss rate, bus
load) and categorical breakdowns (MBus writes that did / did not
receive MShared, victim writes).  These classes gather exactly those,
with support for *measurement windows*: Table 2 spans "several minutes
of execution", excluding start-up, so counters can be snapshotted at a
warm-up boundary and rates computed over the remaining interval.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.common.errors import ConfigurationError


class Counter:
    """A monotonically increasing event counter with window snapshots."""

    __slots__ = ("name", "_total", "_mark")

    def __init__(self, name: str) -> None:
        self.name = name
        self._total = 0
        self._mark = 0

    def add(self, n: int = 1) -> None:
        """Count ``n`` more events."""
        self._total += n

    @property
    def total(self) -> int:
        """Events counted since construction."""
        return self._total

    @property
    def windowed(self) -> int:
        """Events counted since the last :meth:`mark`."""
        return self._total - self._mark

    def mark(self) -> None:
        """Start a measurement window at the current count."""
        self._mark = self._total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._total})"


class RateMeter:
    """Converts a (counter, time-window) pair into a rate.

    Time is in simulator units; callers supply the unit duration in
    seconds to get physical rates (e.g. 100 ns MBus cycles).
    """

    __slots__ = ("counter", "_start_time")

    def __init__(self, counter: Counter, start_time: int = 0) -> None:
        self.counter = counter
        self._start_time = start_time

    def mark(self, now: int) -> None:
        """Open a measurement window at time ``now``."""
        self.counter.mark()
        self._start_time = now

    def rate(self, now: int, unit_seconds: float) -> float:
        """Events per second over the open window ending at ``now``."""
        elapsed = now - self._start_time
        if elapsed <= 0:
            return 0.0
        return self.counter.windowed / (elapsed * unit_seconds)


class Utilization:
    """Tracks the busy fraction of a resource (e.g. MBus load L).

    Busy intervals are accumulated as ``[start, end)`` cycles;
    :meth:`load` divides by the measurement window.
    """

    __slots__ = ("name", "_busy", "_mark_busy", "_window_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self._busy = 0
        self._mark_busy = 0
        self._window_start = 0

    def add_busy(self, cycles: int) -> None:
        """Record ``cycles`` of busy time."""
        if cycles < 0:
            raise ConfigurationError(f"negative busy time {cycles}")
        self._busy += cycles

    @property
    def busy_total(self) -> int:
        """Total busy cycles since construction."""
        return self._busy

    def mark(self, now: int) -> None:
        """Open a measurement window at time ``now``."""
        self._mark_busy = self._busy
        self._window_start = now

    def load(self, now: int) -> float:
        """Busy fraction over the open window ending at ``now``."""
        elapsed = now - self._window_start
        if elapsed <= 0:
            return 0.0
        return (self._busy - self._mark_busy) / elapsed


class StatSet:
    """A named bag of counters, created lazily.

    >>> stats = StatSet("cache0")
    >>> stats.incr("read_hit")
    >>> stats["read_hit"].total
    1
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}

    def counter(self, key: str) -> Counter:
        """Return (creating if needed) the counter named ``key``."""
        counter = self._counters.get(key)
        if counter is None:
            counter = Counter(f"{self.name}.{key}")
            self._counters[key] = counter
        return counter

    def incr(self, key: str, n: int = 1) -> None:
        """Add ``n`` to the counter named ``key``."""
        self.counter(key).add(n)

    def __getitem__(self, key: str) -> Counter:
        return self.counter(key)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def mark_all(self) -> None:
        """Open a measurement window on every existing counter."""
        for counter in self._counters.values():
            counter.mark()

    def items(self) -> Iterator[Tuple[str, Counter]]:
        """Iterate (key, counter) pairs in insertion order."""
        return iter(self._counters.items())

    def totals(self) -> Dict[str, int]:
        """Snapshot of all counter totals."""
        return {key: c.total for key, c in self._counters.items()}

    def windowed(self) -> Dict[str, int]:
        """Snapshot of all counter window values."""
        return {key: c.windowed for key, c in self._counters.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={c.total}" for k, c in self._counters.items())
        return f"StatSet({self.name}: {inner})"


def ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Safe division used throughout metric reporting."""
    if denominator == 0:
        return default
    return numerator / denominator
