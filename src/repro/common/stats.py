"""Statistics primitives used by every model component.

The paper reports rates (K references/second), ratios (miss rate, bus
load) and categorical breakdowns (MBus writes that did / did not
receive MShared, victim writes).  These classes gather exactly those,
with support for *measurement windows*: Table 2 spans "several minutes
of execution", excluding start-up, so counters can be snapshotted at a
warm-up boundary and rates computed over the remaining interval.
"""

from __future__ import annotations

import warnings
from bisect import bisect_left
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError


class Counter:
    """A monotonically increasing event counter with window snapshots."""

    __slots__ = ("name", "_total", "_mark")

    def __init__(self, name: str) -> None:
        self.name = name
        self._total = 0
        self._mark = 0

    def add(self, n: int = 1) -> None:
        """Count ``n`` more events."""
        self._total += n

    @property
    def total(self) -> int:
        """Events counted since construction."""
        return self._total

    @property
    def windowed(self) -> int:
        """Events counted since the last :meth:`mark`."""
        return self._total - self._mark

    def mark(self) -> None:
        """Start a measurement window at the current count."""
        self._mark = self._total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._total})"


class RateMeter:
    """Converts a (counter, time-window) pair into a rate.

    Time is in simulator units; callers supply the unit duration in
    seconds to get physical rates (e.g. 100 ns MBus cycles).
    """

    __slots__ = ("counter", "_start_time")

    def __init__(self, counter: Counter, start_time: int = 0) -> None:
        self.counter = counter
        self._start_time = start_time

    def mark(self, now: int) -> None:
        """Open a measurement window at time ``now``."""
        self.counter.mark()
        self._start_time = now

    def rate(self, now: int, unit_seconds: float) -> float:
        """Events per second over the open window ending at ``now``.

        Raises :class:`ConfigurationError` if ``now`` precedes the
        window start — that means the window was opened in the caller's
        future (or never opened properly), and a silent 0.0 would turn
        a measurement bug into a plausible-looking rate.
        """
        elapsed = now - self._start_time
        if elapsed < 0:
            raise ConfigurationError(
                f"rate({self.counter.name}) queried at {now}, before the "
                f"window opened at {self._start_time}")
        if elapsed == 0:
            return 0.0
        return self.counter.windowed / (elapsed * unit_seconds)


class Utilization:
    """Tracks the busy fraction of a resource (e.g. MBus load L).

    Busy intervals are accumulated as ``[start, end)`` cycles;
    :meth:`load` divides by the measurement window.
    """

    __slots__ = ("name", "_busy", "_mark_busy", "_window_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self._busy = 0
        self._mark_busy = 0
        self._window_start = 0

    def add_busy(self, cycles: int) -> None:
        """Record ``cycles`` of busy time."""
        if cycles < 0:
            raise ConfigurationError(f"negative busy time {cycles}")
        self._busy += cycles

    @property
    def busy_total(self) -> int:
        """Total busy cycles since construction."""
        return self._busy

    def mark(self, now: int) -> None:
        """Open a measurement window at time ``now``."""
        self._mark_busy = self._busy
        self._window_start = now

    def load(self, now: int) -> float:
        """Busy fraction over the open window ending at ``now``.

        Raises :class:`ConfigurationError` if ``now`` precedes the
        window start (a window opened in the caller's future); an
        empty window (``now == start``) is legitimately load 0.0.
        """
        elapsed = now - self._window_start
        if elapsed < 0:
            raise ConfigurationError(
                f"load({self.name}) queried at {now}, before the window "
                f"opened at {self._window_start}")
        if elapsed == 0:
            return 0.0
        return (self._busy - self._mark_busy) / elapsed


class Histogram:
    """A bounded-bucket latency histogram with p50/p95/max readouts.

    Buckets are defined by inclusive upper ``bounds`` plus an implicit
    overflow bucket, so memory stays O(len(bounds)) no matter how many
    values are recorded — the shape hardware latency counters have.
    Used for distributions the mean hides: bus-grant wait (arbitration
    fairness) and miss service time.

    >>> h = Histogram("wait", bounds=(0, 2, 4, 8))
    >>> for v in (0, 0, 1, 3, 9):
    ...     h.record(v)
    >>> h.p50, h.p95, h.max
    (2, 9, 9)
    """

    DEFAULT_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

    __slots__ = ("name", "bounds", "counts", "_count", "_sum", "_max")

    def __init__(self, name: str,
                 bounds: Optional[Sequence[int]] = None) -> None:
        self.name = name
        bounds = tuple(bounds if bounds is not None else self.DEFAULT_BOUNDS)
        if not bounds or any(later <= earlier
                             for later, earlier in zip(bounds[1:], bounds)):
            raise ConfigurationError(
                f"histogram bounds must be non-empty and strictly "
                f"increasing, got {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0
        self._max = 0

    def record(self, value: int, n: int = 1) -> None:
        """Record ``n`` observations of ``value``."""
        if value < 0:
            raise ConfigurationError(f"negative latency {value}")
        self.counts[bisect_left(self.bounds, value)] += n
        self._count += n
        self._sum += value * n
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self._count

    @property
    def mean(self) -> float:
        """Exact mean of the recorded values."""
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> int:
        """Exact maximum recorded value."""
        return self._max

    def percentile(self, p: float) -> int:
        """Upper bound of the bucket containing the p-th percentile.

        The overflow bucket reports the exact maximum.  Returns 0 on an
        empty histogram.
        """
        if not 0 <= p <= 100:
            raise ConfigurationError(f"percentile {p} outside [0, 100]")
        if self._count == 0:
            return 0
        target = max(1, -(-self._count * p // 100))  # ceil
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            if cumulative >= target:
                return bound
        return self._max

    @property
    def p50(self) -> int:
        return self.percentile(50)

    @property
    def p95(self) -> int:
        return self.percentile(95)

    @property
    def p99(self) -> int:
        return self.percentile(99)

    def to_dict(self) -> Dict[str, float]:
        """Summary snapshot (for JSON export and reports)."""
        return {"count": self._count, "mean": self.mean, "p50": self.p50,
                "p95": self.p95, "p99": self.p99, "max": self._max}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Histogram({self.name}: n={self._count} p50={self.p50} "
                f"p95={self.p95} max={self._max})")


class StatSet:
    """A named bag of counters, created lazily.

    >>> stats = StatSet("cache0")
    >>> stats.incr("read_hit")
    >>> stats["read_hit"].total
    1

    Hot callers (caches, CPUs, the bus) pre-create their counters with
    :meth:`counter` and call ``Counter.add`` directly, skipping the
    per-event dict lookup here.
    """

    __slots__ = ("name", "_counters", "_warned_missing")

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._warned_missing: set = set()

    def counter(self, key: str) -> Counter:
        """Return (creating if needed) the counter named ``key``."""
        counter = self._counters.get(key)
        if counter is None:
            counter = Counter(f"{self.name}.{key}")
            self._counters[key] = counter
        return counter

    def incr(self, key: str, n: int = 1) -> None:
        """Add ``n`` to the counter named ``key``."""
        self.counter(key).add(n)

    def __getitem__(self, key: str) -> Counter:
        return self.counter(key)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def get_windowed(self, key: str, default: int = 0) -> int:
        """Window value of ``key``, or ``default`` with a one-time warning.

        Metric collection reads counters by name; a renamed counter
        would otherwise silently zero a report column (a Table 2 entry
        reading 0 looks plausible).  The first miss of each key on this
        StatSet raises a :class:`RuntimeWarning` so the rename is
        visible, then the default is returned.  Counters that were
        created but never incremented are present and do not warn.
        """
        counter = self._counters.get(key)
        if counter is not None:
            return counter.windowed
        if key not in self._warned_missing:
            self._warned_missing.add(key)
            warnings.warn(
                f"StatSet {self.name!r} has no counter {key!r}; "
                f"reporting default {default} (renamed counter?)",
                RuntimeWarning, stacklevel=2)
        return default

    def mark_all(self) -> None:
        """Open a measurement window on every existing counter."""
        for counter in self._counters.values():
            counter.mark()

    def items(self) -> Iterator[Tuple[str, Counter]]:
        """Iterate (key, counter) pairs in insertion order."""
        return iter(self._counters.items())

    def totals(self) -> Dict[str, int]:
        """Snapshot of all counter totals."""
        return {key: c.total for key, c in self._counters.items()}

    def windowed(self) -> Dict[str, int]:
        """Snapshot of all counter window values."""
        return {key: c.windowed for key, c in self._counters.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={c.total}" for k, c in self._counters.items())
        return f"StatSet({self.name}: {inner})"


def ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Safe division used throughout metric reporting."""
    if denominator == 0:
        return default
    return numerator / denominator
