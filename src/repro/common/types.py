"""Core value types and hardware timing constants.

Address convention
------------------
Addresses throughout the library are **longword indices**: address ``a``
names the 4-byte aligned word at byte address ``4*a``.  The Firefly's
cache line is exactly one longword, so in the default geometry a line
index equals a word address; the generalized geometry (line-size
ablation, A7 in DESIGN.md) groups ``words_per_line`` consecutive words
per line.

Timing constants (from the paper)
---------------------------------
- MBus cycle: 100 ns; every MBus operation takes 4 cycles (400 ns),
  non-pipelined, so peak bandwidth is one longword per 400 ns = 10 MB/s.
- MicroVAX tick: 200 ns (2 MBus cycles); base CPI is 11.9 ticks.
- CVAX cycle: 100 ns (1 MBus cycle); cache hits complete in 200 ns.
"""

from __future__ import annotations

import enum
from typing import Optional

# --- timing constants -------------------------------------------------

MBUS_CYCLE_NS = 100
"""Duration of one MBus cycle in nanoseconds (the simulator time unit)."""

MBUS_OP_CYCLES = 4
"""MBus cycles per MRead/MWrite operation (Figure 4)."""

MICROVAX_TICK_CYCLES = 2
"""MBus cycles per MicroVAX tick (200 ns ticks)."""

CVAX_CYCLE_CYCLES = 1
"""MBus cycles per CVAX processor cycle (100 ns)."""

SECONDS_PER_CYCLE = MBUS_CYCLE_NS * 1e-9
"""Physical seconds represented by one simulator time unit."""

BYTES_PER_LONGWORD = 4
"""VAX longword size; also the Firefly cache line size."""


class AccessKind(enum.Enum):
    """The three CPU reference categories the paper's mix distinguishes."""

    INSTRUCTION_READ = "ifetch"
    DATA_READ = "dread"
    DATA_WRITE = "dwrite"

    @property
    def is_write(self) -> bool:
        return self is AccessKind.DATA_WRITE

    @property
    def is_instruction(self) -> bool:
        return self is AccessKind.INSTRUCTION_READ


class BusOp(enum.Enum):
    """Bus operation kinds.

    The Firefly MBus has only ``MREAD`` and ``MWRITE``.  The two extra
    kinds exist so the baseline protocols (Berkeley, MESI, write-once)
    can be expressed on the same bus model: ``MREAD_EX`` is a read that
    also claims ownership (invalidating other copies), ``MINVALIDATE``
    is an address-only invalidation.  All four occupy the same 4 bus
    cycles, so protocol comparisons isolate traffic counts rather than
    bus redesigns (see DESIGN.md).
    """

    MREAD = "MRead"
    MWRITE = "MWrite"
    MREAD_EX = "MReadEx"
    MINVALIDATE = "MInvalidate"

    @property
    def carries_write_data(self) -> bool:
        return self is BusOp.MWRITE

    @property
    def returns_data(self) -> bool:
        return self in (BusOp.MREAD, BusOp.MREAD_EX)

    @property
    def invalidates(self) -> bool:
        return self in (BusOp.MREAD_EX, BusOp.MINVALIDATE)


class MemRef:
    """One CPU memory reference presented to a cache.

    ``partial`` marks a sub-longword write (byte or word store), which
    cannot use the Firefly longword write-miss optimisation and must
    take the read-miss-then-write-hit path.  ``prefetch`` marks
    instruction reads issued by the prefetcher ahead of execution.

    Instances are immutable (:meth:`__setattr__` raises).  This is a
    hand-rolled slotted class rather than a frozen dataclass because
    reference sources construct one per memory reference — the single
    hottest allocation in the simulator — and the generated frozen
    ``__init__`` costs more than the rest of construction combined.
    Equality, hashing and repr keep the dataclass semantics.
    """

    __slots__ = ("address", "kind", "partial", "prefetch")

    def __init__(self, address: int, kind: AccessKind,
                 partial: bool = False, prefetch: bool = False,
                 _set=object.__setattr__) -> None:
        if address < 0:
            raise ValueError(f"negative address {address}")
        if partial and kind is not AccessKind.DATA_WRITE:
            raise ValueError("only data writes can be partial")
        _set(self, "address", address)
        _set(self, "kind", kind)
        _set(self, "partial", partial)
        _set(self, "prefetch", prefetch)

    def __setattr__(self, name, value):
        raise AttributeError(f"MemRef is immutable (tried to set {name})")

    def _key(self):
        return (self.address, self.kind, self.partial, self.prefetch)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is MemRef:
            return self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"MemRef(address={self.address!r}, kind={self.kind!r}, "
                f"partial={self.partial!r}, prefetch={self.prefetch!r})")


class BusTransaction:
    """A completed MBus transaction, as observed on the wires.

    Attributes mirror what the hardware's measurement counter could
    see: the operation, the address, whether any snooper asserted
    ``MShared`` during cycle 3, whether a cache (rather than memory)
    supplied read data, and whether the write was a victim write-back.

    Treat instances as immutable; slotted plain class for the same
    per-transaction allocation-cost reason as :class:`MemRef`.
    """

    __slots__ = ("op", "address", "initiator", "start_cycle",
                 "shared_response", "supplied_by_cache", "is_victim", "data")

    def __init__(self, op: BusOp, address: int, initiator: int,
                 start_cycle: int, shared_response: bool,
                 supplied_by_cache: bool, is_victim: bool = False,
                 data: Optional[int] = None) -> None:
        self.op = op
        self.address = address
        self.initiator = initiator
        self.start_cycle = start_cycle
        self.shared_response = shared_response
        self.supplied_by_cache = supplied_by_cache
        self.is_victim = is_victim
        self.data = data

    def _key(self):
        return (self.op, self.address, self.initiator, self.start_cycle,
                self.shared_response, self.supplied_by_cache,
                self.is_victim, self.data)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is BusTransaction:
            return self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"BusTransaction(op={self.op!r}, address={self.address!r}, "
                f"initiator={self.initiator!r}, "
                f"start_cycle={self.start_cycle!r}, "
                f"shared_response={self.shared_response!r}, "
                f"supplied_by_cache={self.supplied_by_cache!r}, "
                f"is_victim={self.is_victim!r}, data={self.data!r})")


def align_to_line(address: int, words_per_line: int) -> int:
    """First word address of the line containing ``address``."""
    return (address // words_per_line) * words_per_line
