"""A small discrete-event simulation kernel with coroutine processes.

Every hardware and software model in the reproduction runs on this
kernel.  Time is a bare integer; the Firefly models interpret one unit
as a 100 ns MBus cycle, but the kernel itself is unit-agnostic.

Processes are Python generators.  A process yields *waitables*:

``yield sim.timeout(n)``
    suspend for ``n`` time units.

``yield event``
    suspend until :meth:`Event.succeed` is called; the yield expression
    evaluates to the value passed to ``succeed``.

``yield resource.acquire(priority=...)``
    suspend until the resource grants this process; lower ``priority``
    numbers are served first (the MBus uses fixed per-cache priorities).

A process may also yield another :class:`Process` to join it (suspend
until that process returns), and its final ``return`` value becomes the
join value.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def pinger():
...     yield sim.timeout(5)
...     log.append(sim.now)
>>> _ = sim.process(pinger(), name="ping")
>>> sim.run()
>>> log
[5]
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterator, List, Optional

from repro.common.errors import DeadlockError, SimulationError


class Event:
    """A one-shot condition that processes can wait on.

    An ``Event`` starts pending.  Calling :meth:`succeed` fires it,
    resuming every waiter with the supplied value.  Firing twice is an
    error (these model hardware strobes, which do not re-arm).
    """

    __slots__ = ("_sim", "_value", "_fired", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._value: Any = None
        self._fired = False
        self._waiters: List["Process"] = []
        self.name = name

    @property
    def fired(self) -> bool:
        """Whether :meth:`succeed` has been called."""
        return self._fired

    @property
    def value(self) -> Any:
        """The value the event fired with (``None`` before firing)."""
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters at the current time."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim._schedule(0, proc, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._fired:
            # Late waiters see the value immediately (next delta).
            self._sim._schedule(0, proc, self._value)
        else:
            self._waiters.append(proc)


class _Timeout:
    """Internal waitable produced by :meth:`Simulator.timeout`."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay
        self.value = value


class Process:
    """A running coroutine registered with the simulator.

    Processes should be created via :meth:`Simulator.process`.  Other
    processes may ``yield`` a Process to join it; the join value is
    whatever the generator returned.
    """

    __slots__ = ("_sim", "_gen", "name", "_done", "_result", "_joiners",
                 "_blocked_on", "_blocked_obj")

    def __init__(self, sim: "Simulator", gen: Generator, name: str) -> None:
        self._sim = sim
        self._gen = gen
        self.name = name
        self._done = False
        self._result: Any = None
        self._joiners: List["Process"] = []
        self._blocked_on: Optional[str] = None
        # The waited-on Resource/Process, kept only for the deadlock
        # report's wait-for edges (holder lookup).  Set together with
        # _blocked_on in the matching branches; the label's prefix says
        # whether it is current, so the hot branches never clear it.
        self._blocked_obj: Any = None

    @property
    def done(self) -> bool:
        """Whether the underlying generator has returned."""
        return self._done

    @property
    def result(self) -> Any:
        """The generator's return value (``None`` until done)."""
        return self._result

    def _add_waiter(self, proc: "Process") -> None:
        if self._done:
            self._sim._schedule(0, proc, self._result)
        else:
            self._joiners.append(proc)

    def _step(self, send_value: Any) -> None:
        """Advance the generator by one yield, then dispatch the waitable."""
        sim = self._sim
        try:
            waitable = self._gen.send(send_value)
        except StopIteration as stop:
            self._done = True
            self._result = stop.value
            self._blocked_on = None
            sim._live.discard(self)
            joiners, self._joiners = self._joiners, []
            for j in joiners:
                sim._schedule(0, j, self._result)
            return
        # Timeouts dominate every workload (one per simulated tick), so
        # that branch is checked first and its scheduling is inlined —
        # no _schedule() frame, no negative-delay re-check (the _Timeout
        # constructor already validated the delay).
        if waitable.__class__ is _Timeout:
            self._blocked_on = "timeout"
            sim._seq += 1
            heappush(sim._heap, (sim.now + waitable.delay, sim._seq, self,
                                 waitable.value, None))
        elif waitable.__class__ is _AcquireRequest:
            # Second-hottest waitable (one per bus transaction); exact
            # class check, mirroring the timeout branch.  The isinstance
            # fallback below keeps hypothetical subclasses working.
            self._blocked_on = waitable.resource._blocked_label
            self._blocked_obj = waitable.resource
            waitable.resource._enqueue(waitable, self)
        elif isinstance(waitable, Event):
            self._blocked_on = f"event:{waitable.name}"
            waitable._add_waiter(self)
        elif isinstance(waitable, Process):
            self._blocked_on = f"join:{waitable.name}"
            self._blocked_obj = waitable
            waitable._add_waiter(self)
        elif isinstance(waitable, _AcquireRequest):
            self._blocked_on = waitable.resource._blocked_label
            self._blocked_obj = waitable.resource
            waitable.resource._enqueue(waitable, self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported waitable {waitable!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self._done else (self._blocked_on or "ready")
        return f"<Process {self.name} {state}>"


class _AcquireRequest:
    """Internal waitable produced by :meth:`Resource.acquire`."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int) -> None:
        self.resource = resource
        self.priority = priority


class Resource:
    """A mutually-exclusive resource with priority queuing.

    The MBus is a ``Resource``: caches request it with their fixed
    hardware priority, and the arbiter grants the highest-priority
    (lowest number) waiter when the bus frees.  Ties are served in
    request order (FIFO), which matches a daisy-chained arbiter.
    """

    __slots__ = ("_sim", "name", "_holder", "_queue", "_seq", "_wait_cycles",
                 "_grants", "_blocked_label", "_requests")

    def __init__(self, sim: "Simulator", name: str = "resource") -> None:
        self._sim = sim
        self.name = name
        # Formatted once: _step assigns this on every acquire.
        self._blocked_label = f"resource:{name}"
        # Interned acquire waitables, keyed by priority: a request is
        # immutable and read-only to _enqueue, and each client acquires
        # at a fixed priority (the MBus priority chain), so one object
        # per priority serves every transaction.
        self._requests: dict = {}
        self._holder: Optional[Process] = None
        self._queue: List = []  # heap of (priority, seq, enqueue_time, proc)
        self._seq = 0
        self._wait_cycles = 0
        self._grants = 0

    @property
    def holder(self) -> Optional[Process]:
        """The process currently holding the resource, if any."""
        return self._holder

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a grant."""
        return len(self._queue)

    @property
    def total_wait(self) -> int:
        """Cumulative time units waiters spent queued before grant."""
        return self._wait_cycles

    @property
    def grants(self) -> int:
        """Number of grants issued so far."""
        return self._grants

    def acquire(self, priority: int = 0) -> _AcquireRequest:
        """Return a waitable that resolves when this process is granted."""
        request = self._requests.get(priority)
        if request is None:
            request = self._requests[priority] = _AcquireRequest(self, priority)
        return request

    def release(self, proc: Process) -> None:
        """Release the resource; the caller must be the holder."""
        if self._holder is not proc:
            raise SimulationError(
                f"{proc.name!r} released {self.name!r} held by "
                f"{self._holder.name if self._holder else None!r}"
            )
        self._holder = None
        self._grant_next()

    def _enqueue(self, request: _AcquireRequest, proc: Process) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (request.priority, self._seq, self._sim.now, proc))
        if self._holder is None:
            self._grant_next()

    def _grant_next(self) -> None:
        if self._holder is not None or not self._queue:
            return
        _, _, enqueued, proc = heapq.heappop(self._queue)
        self._holder = proc
        self._grants += 1
        self._wait_cycles += self._sim.now - enqueued
        self._sim._schedule(0, proc, self)


class Simulator:
    """The event loop: an integer clock plus a heap of pending resumptions.

    The kernel distinguishes *processes* (coroutines stepped by the
    loop) from *callbacks* (bare functions, used by periodic hardware
    like the MDC's poll timer).
    """

    __slots__ = ("now", "_heap", "_seq", "_live", "_timeouts")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List = []  # (time, seq, proc_or_None, value, callback)
        self._seq = 0
        self._live: set = set()
        # Interned value-less timeouts, keyed by delay.  _Timeout is
        # immutable once built and _step only reads it, so one object
        # per distinct delay serves every yield; models yield a timeout
        # per simulated tick, making this the kernel's hottest
        # allocation.  Delays in practice form a tiny set (tick widths,
        # bus cycles, residual instruction budgets).
        self._timeouts: dict = {}

    # -- scheduling ---------------------------------------------------

    def _schedule(self, delay: int, proc: Optional[Process], value: Any = None,
                  callback: Optional[Callable[[], None]] = None) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} units in the past")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, proc, value, callback))

    def process(self, gen: Generator, name: str = "proc") -> Process:
        """Register a generator as a process, starting it at the current time."""
        proc = Process(self, gen, name)
        self._live.add(proc)
        self._schedule(0, proc, None)
        return proc

    def call_at(self, delay: int, callback: Callable[[], None]) -> None:
        """Invoke ``callback()`` after ``delay`` time units."""
        self._schedule(delay, None, None, callback)

    def timeout(self, delay: int, value: Any = None) -> _Timeout:
        """Waitable: suspend the yielding process for ``delay`` units."""
        if value is None:
            cached = self._timeouts.get(delay)
            if cached is None:
                cached = self._timeouts[delay] = _Timeout(delay)
            return cached
        return _Timeout(delay, value)

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot :class:`Event`."""
        return Event(self, name)

    def resource(self, name: str = "resource") -> Resource:
        """Create a priority-queued mutually-exclusive :class:`Resource`."""
        return Resource(self, name)

    # -- running ------------------------------------------------------

    def _pop_and_run(self) -> None:
        time, _, proc, value, callback = heapq.heappop(self._heap)
        if time < self.now:  # pragma: no cover - heap guarantees order
            raise SimulationError("time ran backwards")
        self.now = time
        if callback is not None:
            callback()
        elif proc is not None:
            proc._step(value)

    def run(self, check_deadlock: bool = False) -> None:
        """Run until the event heap is empty.

        With ``check_deadlock=True``, raise :class:`DeadlockError` if
        live processes remain blocked when the heap drains (useful in
        tests of the synchronisation primitives).
        """
        # The dispatch loop is inlined (no _pop_and_run call frame) with
        # the heap and heappop bound locally: this loop runs once per
        # simulated event and dominates the wall-clock of every run.
        heap = self._heap
        pop = heappop
        while heap:
            time, _, proc, value, callback = pop(heap)
            self.now = time
            if callback is None:
                if proc is not None:
                    proc._step(value)
            else:
                callback()
        if check_deadlock and self._live:
            blocked = sorted(
                (p.name, p._blocked_on or "?")
                for p in self._live if not p.done
            )
            if blocked:
                raise DeadlockError(blocked, now=self.now,
                                    edges=self._wait_edges())

    def _wait_edges(self):
        """(waiter, resource, holder) triples over the live processes.

        The holder is the owning process for resource waits and the
        joined process for joins; event waits have no holder (anyone
        may fire the event).
        """
        edges = []
        for proc in self._live:
            label = proc._blocked_on
            if proc.done or not label:
                continue
            obj = proc._blocked_obj
            holder = ""
            if label.startswith("resource:") and obj is not None:
                owner = obj.holder
                holder = owner.name if owner is not None else ""
            elif label.startswith("join:") and obj is not None:
                holder = obj.name
            edges.append((proc.name, label, holder))
        return sorted(edges)

    def run_until(self, end_time: int) -> None:
        """Run events with timestamps ``<= end_time``, then set ``now`` there.

        Models use this for fixed-horizon measurement windows: the clock
        always lands exactly on ``end_time`` even if no event occurs
        then.
        """
        if end_time < self.now:
            raise SimulationError(
                f"run_until({end_time}) is in the past (now={self.now})"
            )
        heap = self._heap
        pop = heappop
        while heap and heap[0][0] <= end_time:
            time, _, proc, value, callback = pop(heap)
            self.now = time
            if callback is None:
                if proc is not None:
                    proc._step(value)
            else:
                callback()
        self.now = end_time

    def peek(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        return self._heap[0][0] if self._heap else None

    def blocked_processes(self) -> Iterator[Process]:
        """Yield live processes that have not finished (debug/tests)."""
        return iter(p for p in self._live if not p.done)
