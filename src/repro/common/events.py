"""A small discrete-event simulation kernel with coroutine processes.

Every hardware and software model in the reproduction runs on this
kernel.  Time is a bare integer; the Firefly models interpret one unit
as a 100 ns MBus cycle, but the kernel itself is unit-agnostic.

Processes are Python generators.  A process yields *waitables*:

``yield sim.timeout(n)``
    suspend for ``n`` time units.

``yield event``
    suspend until :meth:`Event.succeed` is called; the yield expression
    evaluates to the value passed to ``succeed``.

``yield resource.acquire(priority=...)``
    suspend until the resource grants this process; lower ``priority``
    numbers are served first (the MBus uses fixed per-cache priorities).

A process may also yield another :class:`Process` to join it (suspend
until that process returns), and its final ``return`` value becomes the
join value.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def pinger():
...     yield sim.timeout(5)
...     log.append(sim.now)
>>> _ = sim.process(pinger(), name="ping")
>>> sim.run()
>>> log
[5]

Engines
-------
The pending-event structure is pluggable: ``Simulator(engine="wheel")``
(the default) uses a calendar-queue **event wheel** tuned for the
dominant fixed-latency events (bus transfer slots, interned timeouts,
scheduler quanta); ``engine="heap"`` keeps the classic binary heap.
Both engines pop events in *identical* ``(time, seq)`` order — the
wheel is a pure host-side optimisation, proven equivalent by
``tests/test_engine_equivalence.py`` — so every simulated metric and
telemetry byte is engine-independent.  See docs/PERFORMANCE.md for the
wheel design (bucket width, overflow heap, rotation cost).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterator, List, Optional, Tuple

from repro.common.errors import (ConfigurationError, DeadlockError,
                                 SimulationError)

#: The two pending-event engines a Simulator can run on.
ENGINES = ("wheel", "heap")

#: Slots in the event wheel (one simulated tick per slot).  Power of
#: two so slot indexing is a mask.  Delays below this land directly in
#: a slot; longer delays wait in the overflow heap and migrate as the
#: wheel rotates.  1024 covers every fixed hardware latency in the
#: models (bus cycles, tick widths, scheduler quanta) with room to
#: spare, while keeping a full empty-wheel rotation scan cheap.
WHEEL_SIZE = 1024

_DEFAULT_ENGINE = "wheel"


def default_engine() -> str:
    """The engine ``Simulator()`` uses when none is requested."""
    return _DEFAULT_ENGINE


def set_default_engine(engine: str) -> str:
    """Set the process-wide default engine; returns the previous one.

    This is the plumbing behind ``firefly-sim bench --engine``: bench
    scenario runners build machines deep inside workloads, so the
    engine choice travels as an ambient default rather than threading a
    parameter through every constructor.  Pure host-side switch — the
    simulated behaviour is engine-independent.
    """
    global _DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown event engine {engine!r}; known: {', '.join(ENGINES)}")
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


class Event:
    """A one-shot condition that processes can wait on.

    An ``Event`` starts pending.  Calling :meth:`succeed` fires it,
    resuming every waiter with the supplied value.  Firing twice is an
    error (these model hardware strobes, which do not re-arm).
    """

    __slots__ = ("_sim", "_value", "_fired", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._value: Any = None
        self._fired = False
        self._waiters: List["Process"] = []
        self.name = name

    @property
    def fired(self) -> bool:
        """Whether :meth:`succeed` has been called."""
        return self._fired

    @property
    def value(self) -> Any:
        """The value the event fired with (``None`` before firing)."""
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters at the current time."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim._schedule(0, proc, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._fired:
            # Late waiters see the value immediately (next delta).
            self._sim._schedule(0, proc, self._value)
        else:
            self._waiters.append(proc)


class _Timeout:
    """Internal waitable produced by :meth:`Simulator.timeout`."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay
        self.value = value


class Process:
    """A running coroutine registered with the simulator.

    Processes should be created via :meth:`Simulator.process`.  Other
    processes may ``yield`` a Process to join it; the join value is
    whatever the generator returned.
    """

    __slots__ = ("_sim", "_gen", "name", "_done", "_result", "_joiners",
                 "_blocked_on", "_blocked_obj")

    def __init__(self, sim: "Simulator", gen: Generator, name: str) -> None:
        self._sim = sim
        self._gen = gen
        self.name = name
        self._done = False
        self._result: Any = None
        self._joiners: List["Process"] = []
        self._blocked_on: Optional[str] = None
        # The waited-on Resource/Process, kept only for the deadlock
        # report's wait-for edges (holder lookup).  Set together with
        # _blocked_on in the matching branches; the label's prefix says
        # whether it is current, so the hot branches never clear it.
        self._blocked_obj: Any = None

    @property
    def done(self) -> bool:
        """Whether the underlying generator has returned."""
        return self._done

    @property
    def result(self) -> Any:
        """The generator's return value (``None`` until done)."""
        return self._result

    def _add_waiter(self, proc: "Process") -> None:
        if self._done:
            self._sim._schedule(0, proc, self._result)
        else:
            self._joiners.append(proc)

    def _step(self, send_value: Any) -> None:
        """Advance the generator by one yield, then dispatch the waitable."""
        sim = self._sim
        sim._current = self
        try:
            waitable = self._gen.send(send_value)
        except StopIteration as stop:
            self._done = True
            self._result = stop.value
            self._blocked_on = None
            sim._live.discard(self)
            joiners, self._joiners = self._joiners, []
            for j in joiners:
                sim._schedule(0, j, self._result)
            return
        # Timeouts dominate every workload (one per simulated tick), so
        # that branch is checked first and its scheduling goes straight
        # through the engine's pre-bound push — no _schedule() frame, no
        # negative-delay re-check (the _Timeout constructor already
        # validated the delay).
        if waitable.__class__ is _Timeout:
            self._blocked_on = "timeout"
            sim._seq += 1
            sim._push(sim.now + waitable.delay, sim._seq, self,
                      waitable.value, None)
        elif waitable.__class__ is _AcquireRequest:
            # Second-hottest waitable (one per bus transaction); exact
            # class check, mirroring the timeout branch.  The isinstance
            # fallback below keeps hypothetical subclasses working.
            self._blocked_on = waitable.resource._blocked_label
            self._blocked_obj = waitable.resource
            waitable.resource._enqueue(waitable, self)
        elif isinstance(waitable, Event):
            self._blocked_on = f"event:{waitable.name}"
            waitable._add_waiter(self)
        elif isinstance(waitable, Process):
            self._blocked_on = f"join:{waitable.name}"
            self._blocked_obj = waitable
            waitable._add_waiter(self)
        elif isinstance(waitable, _AcquireRequest):
            self._blocked_on = waitable.resource._blocked_label
            self._blocked_obj = waitable.resource
            waitable.resource._enqueue(waitable, self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported waitable {waitable!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self._done else (self._blocked_on or "ready")
        return f"<Process {self.name} {state}>"


class _AcquireRequest:
    """Internal waitable produced by :meth:`Resource.acquire`."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int) -> None:
        self.resource = resource
        self.priority = priority


class Resource:
    """A mutually-exclusive resource with priority queuing.

    The MBus is a ``Resource``: caches request it with their fixed
    hardware priority, and the arbiter grants the highest-priority
    (lowest number) waiter when the bus frees.  Ties are served in
    request order (FIFO), which matches a daisy-chained arbiter.
    """

    __slots__ = ("_sim", "name", "_holder", "_queue", "_seq", "_wait_cycles",
                 "_grants", "_blocked_label", "_requests")

    def __init__(self, sim: "Simulator", name: str = "resource") -> None:
        self._sim = sim
        self.name = name
        # Formatted once: _step assigns this on every acquire.
        self._blocked_label = f"resource:{name}"
        # Interned acquire waitables, keyed by priority: a request is
        # immutable and read-only to _enqueue, and each client acquires
        # at a fixed priority (the MBus priority chain), so one object
        # per priority serves every transaction.
        self._requests: dict = {}
        self._holder: Optional[Process] = None
        self._queue: List = []  # heap of (priority, seq, enqueue_time, proc)
        self._seq = 0
        self._wait_cycles = 0
        self._grants = 0

    @property
    def holder(self) -> Optional[Process]:
        """The process currently holding the resource, if any."""
        return self._holder

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a grant."""
        return len(self._queue)

    @property
    def total_wait(self) -> int:
        """Cumulative time units waiters spent queued before grant."""
        return self._wait_cycles

    @property
    def grants(self) -> int:
        """Number of grants issued so far."""
        return self._grants

    def acquire(self, priority: int = 0) -> _AcquireRequest:
        """Return a waitable that resolves when this process is granted."""
        request = self._requests.get(priority)
        if request is None:
            request = self._requests[priority] = _AcquireRequest(self, priority)
        return request

    def release(self, proc: Process) -> None:
        """Release the resource; the caller must be the holder."""
        if self._holder is not proc:
            raise SimulationError(
                f"{proc.name!r} released {self.name!r} held by "
                f"{self._holder.name if self._holder else None!r}"
            )
        self._holder = None
        self._grant_next()

    def _enqueue(self, request: _AcquireRequest, proc: Process) -> None:
        # heappush is the pre-bound C function (module import), matching
        # the treated run-loop/_step sites: one per bus transaction.
        self._seq += 1
        heappush(self._queue, (request.priority, self._seq, self._sim.now, proc))
        if self._holder is None:
            self._grant_next()

    def _grant_next(self) -> None:
        if self._holder is not None or not self._queue:
            return
        _, _, enqueued, proc = heappop(self._queue)
        self._holder = proc
        self._grants += 1
        self._wait_cycles += self._sim.now - enqueued
        self._sim._schedule(0, proc, self)


class _HeapScheduler:
    """The classic binary-heap pending-event structure.

    Entries are ``(time, seq, proc, value, callback)`` tuples popped in
    ``(time, seq)`` order — ``seq`` is the simulator's global schedule
    counter, so same-time events resume in scheduling order.
    """

    __slots__ = ("_heap",)

    kind = "heap"

    def __init__(self, sim: "Simulator") -> None:
        self._heap: List[Tuple] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: int, seq: int, proc: Optional[Process],
             value: Any, callback: Optional[Callable[[], None]]) -> None:
        heappush(self._heap, (time, seq, proc, value, callback))

    def peek(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def drain(self, sim: "Simulator", limit: Optional[int]) -> None:
        """Dispatch events in order; all of them (``limit=None``) or
        only those with ``time <= limit``.

        This single loop body serves both :meth:`Simulator.run` and
        :meth:`Simulator.run_until`; it is inlined (no per-event call
        frames beyond the process step itself) with the heap and
        ``heappop`` bound locally, because it runs once per simulated
        event and dominates the wall-clock of every heap-engine run.
        """
        heap = self._heap
        pop = heappop
        if limit is None:
            while heap:
                time, _, proc, value, callback = pop(heap)
                sim.now = time
                if callback is None:
                    if proc is not None:
                        proc._step(value)
                else:
                    sim._current = None
                    callback()
        else:
            while heap and heap[0][0] <= limit:
                time, _, proc, value, callback = pop(heap)
                sim.now = time
                if callback is None:
                    if proc is not None:
                        proc._step(value)
                else:
                    sim._current = None
                    callback()


class _WheelScheduler:
    """A calendar-queue event wheel with an overflow heap.

    ``size`` slots of one simulated tick each; an event ``delay`` ticks
    out lands in slot ``time & mask`` when ``delay < size`` (the
    overwhelmingly common case: bus transfer slots, interned timeouts,
    scheduler quanta are all small fixed latencies), else waits in a
    binary heap of far-future events and migrates into a slot once the
    wheel's rotation brings it inside the horizon.

    Order contract (the whole point): pops occur in exactly the heap
    engine's ``(time, seq)`` order.  The invariants that guarantee it:

    - every pending slotted entry has ``now <= time < now + size``, so
      within one rotation each residue class maps to exactly *one*
      pending timestamp — a slot never mixes timestamps;
    - same-slot entries are appended in increasing ``seq`` (the global
      schedule counter), except entries migrating from the overflow
      heap, which may arrive out of order — so a multi-entry slot is
      (cheaply, usually already-sorted) sorted before dispatch;
    - entries scheduled for the *current* timestamp while its slot is
      being drained append behind the cursor and are dispatched in the
      same pass, exactly as the heap engine would pop them.

    Cost model: push is O(1) (append) for in-horizon delays, O(log f)
    for the far-future fraction f; pop is O(1) amortised plus the
    empty-slot rotation scan, which is bounded by one slot check per
    elapsed simulated tick — negligible for the dense event populations
    the models generate (the exerciser dispatches roughly one event per
    tick) and bounded by ``size`` checks even for a lone sleeper.
    """

    __slots__ = ("_sim", "_size", "_mask", "_slots", "_overflow", "_count")

    kind = "wheel"

    def __init__(self, sim: "Simulator", size: int = WHEEL_SIZE) -> None:
        if size < 2 or size & (size - 1):
            raise ConfigurationError(
                f"wheel size must be a power of two >= 2, got {size}")
        self._sim = sim
        self._size = size
        self._mask = size - 1
        self._slots: List[List[Tuple]] = [[] for _ in range(size)]
        self._overflow: List[Tuple] = []
        self._count = 0  # entries currently in slots (not overflow)

    def __len__(self) -> int:
        return self._count + len(self._overflow)

    def push(self, time: int, seq: int, proc: Optional[Process],
             value: Any, callback: Optional[Callable[[], None]]) -> None:
        # Horizon test against sim.now: pushes only ever happen with the
        # clock at the instant of the causing event, so ``now`` is the
        # wheel cursor.  Entries admitted here satisfy
        # ``time < now + size``, preserving the one-timestamp-per-slot
        # invariant documented above.
        if time - self._sim.now < self._size:
            self._slots[time & self._mask].append(
                (time, seq, proc, value, callback))
            self._count += 1
        else:
            heappush(self._overflow, (time, seq, proc, value, callback))

    def peek(self) -> Optional[int]:
        """Next pending timestamp without dispatching (not a hot path)."""
        soonest: Optional[int] = None
        if self._count:
            slots, mask = self._slots, self._mask
            cur = self._sim.now
            for _ in range(self._size):
                slot = slots[cur & mask]
                if slot:
                    soonest = slot[0][0]
                    break
                cur += 1
        if self._overflow:
            head = self._overflow[0][0]
            if soonest is None or head < soonest:
                soonest = head
        return soonest

    def drain(self, sim: "Simulator", limit: Optional[int]) -> None:
        """Dispatch events in ``(time, seq)`` order; all of them
        (``limit=None``) or only those with ``time <= limit``.

        One loop body for both :meth:`Simulator.run` and
        :meth:`Simulator.run_until`, mirroring the heap engine.  Each
        outer iteration migrates newly in-horizon overflow entries,
        finds the next populated slot, and dispatches that entire
        timestamp in one pass — ``sim.now`` is written once per
        timestamp, not once per event, and same-tick reschedules
        (event fires, resource grants, zero-delay timeouts) append
        behind the cursor with no heap traffic at all.
        """
        slots = self._slots
        mask = self._mask
        size = self._size
        overflow = self._overflow
        pop = heappop
        cur = sim.now
        while True:
            count = self._count
            if overflow:
                # Rotation brought some far-future entries inside the
                # horizon: move them into their slots.  Migration can
                # land behind pending same-time entries with higher
                # seq; the pre-dispatch sort below restores order.
                head = overflow[0][0]
                while head - cur < size:
                    entry = pop(overflow)
                    slots[entry[0] & mask].append(entry)
                    count += 1
                    if not overflow:
                        break
                    head = overflow[0][0]
                self._count = count
            if count == 0:
                if not overflow:
                    break
                # Wheel empty: jump straight to the overflow head (a
                # lone far-future timer costs no rotation scan at all).
                head = overflow[0][0]
                if limit is not None and head > limit:
                    break
                cur = head
                continue
            # Find the next populated slot.  Bounded by one rotation:
            # every pending slotted entry lies within [cur, cur + size).
            slot = slots[cur & mask]
            if not slot:
                end = cur + size
                while True:
                    cur += 1
                    slot = slots[cur & mask]
                    if slot:
                        break
                    if cur >= end:  # pragma: no cover - invariant guard
                        raise SimulationError(
                            "event wheel lost track of pending events")
            time = slot[0][0]
            if limit is not None and time > limit:
                break
            if len(slot) > 1:
                # Usually already sorted (append order == seq order);
                # Timsort makes this one comparison per entry.  Tuples
                # compare by (time, seq) and seq is unique, so the
                # payload fields never participate.
                slot.sort()
            sim.now = time
            index = 0
            # len(slot) is re-read every iteration on purpose: handlers
            # scheduling work for *this* timestamp append to this very
            # slot, and the heap engine would dispatch those too.
            while index < len(slot):
                entry = slot[index]
                index += 1
                callback = entry[4]
                if callback is None:
                    proc = entry[2]
                    if proc is not None:
                        proc._step(entry[3])
                else:
                    sim._current = None
                    callback()
            slot.clear()
            # Handlers may have pushed entries for other slots too, so
            # reconcile against the authoritative counter.
            self._count -= index
            cur += 1


_ENGINE_CLASSES = {"heap": _HeapScheduler, "wheel": _WheelScheduler}


class Simulator:
    """The event loop: an integer clock plus a pending-event engine.

    The kernel distinguishes *processes* (coroutines stepped by the
    loop) from *callbacks* (bare functions, used by periodic hardware
    like the MDC's poll timer).

    ``engine`` selects the pending-event structure: ``"wheel"`` (the
    default — a calendar queue tuned for the models' fixed small
    latencies) or ``"heap"`` (the classic binary heap, kept as the
    equivalence oracle).  Pop order, and therefore every simulated
    metric and telemetry byte, is identical between the two.
    """

    __slots__ = ("now", "engine", "_sched", "_push", "_seq", "_live",
                 "_timeouts", "_current")

    def __init__(self, engine: Optional[str] = None,
                 wheel_size: int = WHEEL_SIZE) -> None:
        if engine is None:
            engine = _DEFAULT_ENGINE
        cls = _ENGINE_CLASSES.get(engine)
        if cls is None:
            raise ConfigurationError(
                f"unknown event engine {engine!r}; known: "
                f"{', '.join(ENGINES)}")
        self.now: int = 0
        self.engine = engine
        self._sched = (cls(self, wheel_size) if engine == "wheel"
                       else cls(self))
        #: The engine's push, pre-bound: _step and _schedule call this
        #: once per scheduled event.
        self._push = self._sched.push
        self._seq = 0
        self._live: set = set()
        # Interned value-less timeouts, keyed by delay.  _Timeout is
        # immutable once built and _step only reads it, so one object
        # per distinct delay serves every yield; models yield a timeout
        # per simulated tick, making this the kernel's hottest
        # allocation.  Delays in practice form a tiny set (tick widths,
        # bus cycles, residual instruction budgets).
        self._timeouts: dict = {}
        #: The process whose generator is currently being stepped (None
        #: while idle or inside a bare callback); lets scheduling errors
        #: name their culprit.
        self._current: Optional[Process] = None

    # -- scheduling ---------------------------------------------------

    def _schedule(self, delay: int, proc: Optional[Process], value: Any = None,
                  callback: Optional[Callable[[], None]] = None) -> None:
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} units in the past "
                f"(now={self.now}{self._blame()})")
        self._seq += 1
        self._push(self.now + delay, self._seq, proc, value, callback)

    def _blame(self) -> str:
        """``", process 'name'"`` when a process is being stepped."""
        current = self._current
        return f", process {current.name!r}" if current is not None else ""

    def process(self, gen: Generator, name: str = "proc") -> Process:
        """Register a generator as a process, starting it at the current time."""
        proc = Process(self, gen, name)
        self._live.add(proc)
        self._schedule(0, proc, None)
        return proc

    def call_at(self, delay: int, callback: Callable[[], None]) -> None:
        """Invoke ``callback()`` after ``delay`` time units."""
        self._schedule(delay, None, None, callback)

    def timeout(self, delay: int, value: Any = None) -> _Timeout:
        """Waitable: suspend the yielding process for ``delay`` units."""
        if value is None:
            cached = self._timeouts.get(delay)
            if cached is None:
                if delay < 0:
                    raise SimulationError(
                        f"negative timeout {delay} requested at "
                        f"now={self.now}{self._blame()}")
                cached = self._timeouts[delay] = _Timeout(delay)
            return cached
        if delay < 0:
            raise SimulationError(
                f"negative timeout {delay} requested at "
                f"now={self.now}{self._blame()}")
        return _Timeout(delay, value)

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot :class:`Event`."""
        return Event(self, name)

    def resource(self, name: str = "resource") -> Resource:
        """Create a priority-queued mutually-exclusive :class:`Resource`."""
        return Resource(self, name)

    # -- running ------------------------------------------------------

    def run(self, check_deadlock: bool = False) -> None:
        """Run until no pending events remain.

        With ``check_deadlock=True``, raise :class:`DeadlockError` if
        live processes remain blocked when the queue drains (useful in
        tests of the synchronisation primitives).
        """
        self._sched.drain(self, None)
        if check_deadlock and self._live:
            blocked = sorted(
                (p.name, p._blocked_on or "?")
                for p in self._live if not p.done
            )
            if blocked:
                raise DeadlockError(blocked, now=self.now,
                                    edges=self._wait_edges())

    def _wait_edges(self):
        """(waiter, resource, holder) triples over the live processes.

        The holder is the owning process for resource waits and the
        joined process for joins; event waits have no holder (anyone
        may fire the event).
        """
        edges = []
        for proc in self._live:
            label = proc._blocked_on
            if proc.done or not label:
                continue
            obj = proc._blocked_obj
            holder = ""
            if label.startswith("resource:") and obj is not None:
                owner = obj.holder
                holder = owner.name if owner is not None else ""
            elif label.startswith("join:") and obj is not None:
                holder = obj.name
            edges.append((proc.name, label, holder))
        return sorted(edges)

    def run_until(self, end_time: int) -> None:
        """Run events with timestamps ``<= end_time``, then set ``now`` there.

        Models use this for fixed-horizon measurement windows: the clock
        always lands exactly on ``end_time`` even if no event occurs
        then.
        """
        if end_time < self.now:
            raise SimulationError(
                f"run_until({end_time}) is in the past (now={self.now})"
            )
        self._sched.drain(self, end_time)
        self.now = end_time

    def peek(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        return self._sched.peek()

    def blocked_processes(self) -> Iterator[Process]:
        """Yield live processes that have not finished (debug/tests)."""
        return iter(p for p in self._live if not p.done)
