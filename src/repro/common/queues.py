"""A DES mailbox: unbounded producer/consumer queue for processes.

``put(item)`` is host-callable (any process or callback may call it
synchronously); ``get()`` is a generator a process ``yield from``-s,
blocking until an item is available.  Items are delivered in FIFO
order; multiple blocked consumers are served in arrival order.

Used by the multi-machine plumbing (frames arriving from the Ethernet
wire wake the receiving machine's service processes) and generally
useful for device completion queues.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.common.events import Event, Simulator


class Mailbox:
    """An unbounded FIFO connecting processes."""

    def __init__(self, sim: Simulator, name: str = "mailbox") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._waiters: Deque[Event] = deque()
        self.puts = 0
        self.gets = 0

    def put(self, item: Any) -> None:
        """Deliver an item; wakes the oldest blocked consumer, if any."""
        self.puts += 1
        self._items.append(item)
        if self._waiters:
            self._waiters.popleft().succeed()

    def get(self):
        """Generator: take the oldest item, blocking while empty."""
        while not self._items:
            event = self.sim.event(f"{self.name}.wait")
            self._waiters.append(event)
            yield event
        self.gets += 1
        return self._items.popleft()

    def try_get(self) -> Any:
        """Non-blocking take; returns None when empty."""
        if not self._items:
            return None
        self.gets += 1
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)
