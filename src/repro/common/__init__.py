"""Shared infrastructure for the Firefly reproduction.

This package holds everything that is not specific to the Firefly
hardware: the discrete-event simulation kernel, statistics counters,
deterministic random-stream management, fixed-point accumulators, and
the exception hierarchy.
"""

from repro.common.errors import (
    ConfigurationError,
    CoherenceViolation,
    ReproError,
    SimulationError,
)
from repro.common.events import Event, Process, Resource, Simulator
from repro.common.rng import FractionalAccumulator, RandomStream, StreamFactory
from repro.common.stats import Counter, RateMeter, StatSet, Utilization

__all__ = [
    "ConfigurationError",
    "CoherenceViolation",
    "Counter",
    "Event",
    "FractionalAccumulator",
    "Process",
    "RandomStream",
    "RateMeter",
    "ReproError",
    "Resource",
    "SimulationError",
    "StatSet",
    "StreamFactory",
    "Simulator",
    "Utilization",
]
