"""Artifact provenance: git revision and content-hash stamps.

Every persistent artifact this repo writes — ``BENCH_<n>.json``
documents, campaign ledger rows, merged campaign reports — carries the
same three provenance fields so that a result can always be traced back
to the code and configuration that produced it:

``git_sha``
    The repository revision the artifact was produced at (``None`` when
    the tree is not a git checkout or git is unavailable — artifacts
    must stay writable from an sdist).
``schema``
    The artifact's own format version (stamped by the artifact writer,
    not by this module).
``config_hash``
    A content hash of the *configuration* that produced the artifact,
    computed by :func:`content_hash` over canonical JSON, so two runs
    with the same parameters hash identically regardless of dict
    insertion order.

Readers must tolerate the absence of every provenance field: artifacts
written before this module existed (``BENCH_0001.json``,
``BENCH_0002.json``) carry none of them and remain first-class inputs
to the regression observatory.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path
from typing import Dict, Optional

#: Hash prefix used by :func:`content_hash`; keys and golden digests
#: carry it so a future algorithm change cannot silently collide.
HASH_PREFIX = "sha256"

#: Hex digits kept from the digest — plenty for collision resistance
#: over a repo's worth of trials, short enough to read in a ledger.
HASH_DIGITS = 16


def canonical_json(value) -> str:
    """The canonical serialisation hashing and byte-identity rely on.

    Sorted keys, no insignificant whitespace variation, and no NaN
    (``allow_nan=False`` turns a stray NaN into a loud error instead of
    a non-standard token that other parsers reject).
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def content_hash(value) -> str:
    """``"sha256:<hex>"`` over the canonical JSON form of ``value``."""
    digest = hashlib.sha256(canonical_json(value).encode("utf-8"))
    return f"{HASH_PREFIX}:{digest.hexdigest()[:HASH_DIGITS]}"


def git_sha(root: Optional[Path] = None) -> Optional[str]:
    """The current git revision, or ``None`` when unknowable.

    Tolerates every failure mode silently — no git binary, not a
    checkout, a corrupt .git directory — because provenance is a stamp
    on an artifact, never a precondition for producing one.
    """
    if root is None:
        root = Path(__file__).resolve().parent
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=str(root),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha if sha else None


def provenance_stamp(config, schema: Optional[str] = None,
                     sha: Optional[str] = None) -> Dict:
    """The provenance block artifact writers embed.

    ``config`` is whatever JSON-safe value describes the run's inputs;
    ``sha`` lets callers that stamp many artifacts in one process look
    the revision up once.
    """
    stamp: Dict = {
        "git_sha": git_sha() if sha is None else sha,
        "config_hash": content_hash(config),
    }
    if schema is not None:
        stamp["schema"] = schema
    return stamp
