"""Deterministic random streams and fixed-point accumulators.

Reproducibility rule: every stochastic model component draws from its
own named stream, derived from a single root seed.  Adding a new
component therefore never perturbs the draws of existing ones, and two
runs with the same configuration produce bit-identical statistics.

The paper's reference mix (0.95 instruction reads, 0.78 data reads,
0.40 data writes per instruction) and base TPI of 11.9 are fractional
per-instruction quantities.  :class:`FractionalAccumulator` converts
them into integer per-instruction counts whose long-run average is
exact, without randomness — which keeps the calibration of the analytic
model against the cycle simulator tight.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence

from repro.common.errors import ConfigurationError


class RandomStream:
    """A named, seeded pseudo-random stream (wraps :mod:`random.Random`)."""

    def __init__(self, root_seed: int, name: str) -> None:
        self.name = name
        # Derive a stable 64-bit seed from (root_seed, name) so streams
        # are independent of creation order.
        digest = zlib.crc32(name.encode("utf-8"))
        self._rng = random.Random((root_seed << 32) ^ digest)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._rng.randint(lo, hi)

    def choice(self, seq: Sequence):
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(seq)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self._rng.random() < p

    def expovariate(self, mean: float) -> float:
        """Exponentially distributed value with the given mean."""
        if mean <= 0:
            raise ConfigurationError(f"exponential mean must be positive, got {mean}")
        return self._rng.expovariate(1.0 / mean)

    def geometric(self, mean: float) -> int:
        """Geometric run length (>= 1) with the given mean."""
        if mean < 1:
            raise ConfigurationError(f"geometric mean must be >= 1, got {mean}")
        if mean == 1:
            return 1
        p = 1.0 / mean
        n = 1
        while self._rng.random() >= p:
            n += 1
        return n

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(seq)


class StreamFactory:
    """Creates named :class:`RandomStream` objects from one root seed.

    >>> streams = StreamFactory(seed=42)
    >>> a = streams.stream("cpu0.data")
    >>> b = streams.stream("cpu1.data")
    >>> a.random() != b.random()
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._issued: set = set()

    def stream(self, name: str) -> RandomStream:
        """Create the stream for ``name``; duplicate names are an error."""
        if name in self._issued:
            raise ConfigurationError(f"random stream {name!r} requested twice")
        self._issued.add(name)
        return RandomStream(self.seed, name)


class FractionalAccumulator:
    """Deterministic conversion of a fractional rate into integer counts.

    ``next()`` returns integers whose running mean converges to ``rate``
    (within one unit, binary floating point being what it is), using
    error-diffusion (Bresenham-style):

    >>> acc = FractionalAccumulator(0.4)
    >>> [acc.next() for _ in range(5)]
    [0, 0, 1, 0, 1]
    >>> acc = FractionalAccumulator(0.25)
    >>> sum(acc.next() for _ in range(100))
    25
    """

    __slots__ = ("rate", "_residue")

    def __init__(self, rate: float, phase: float = 0.0) -> None:
        if rate < 0:
            raise ConfigurationError(f"rate must be non-negative, got {rate}")
        if not 0.0 <= phase < 1.0:
            raise ConfigurationError(f"phase must be in [0, 1), got {phase}")
        self.rate = rate
        self._residue = phase

    def next(self) -> int:
        """Return the integer count for the next step."""
        self._residue += self.rate
        whole = int(self._residue)
        self._residue -= whole
        return whole

    def reset(self, phase: float = 0.0) -> None:
        """Restart the error diffusion from ``phase``."""
        if not 0.0 <= phase < 1.0:
            raise ConfigurationError(f"phase must be in [0, 1), got {phase}")
        self._residue = phase
