"""Deterministic random streams and fixed-point accumulators.

Reproducibility rule: every stochastic model component draws from its
own named stream, derived from a single root seed.  Adding a new
component therefore never perturbs the draws of existing ones, and two
runs with the same configuration produce bit-identical statistics.

The paper's reference mix (0.95 instruction reads, 0.78 data reads,
0.40 data writes per instruction) and base TPI of 11.9 are fractional
per-instruction quantities.  :class:`FractionalAccumulator` converts
them into integer per-instruction counts whose long-run average is
exact, without randomness — which keeps the calibration of the analytic
model against the cycle simulator tight.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence

from repro.common.errors import ConfigurationError


class RandomStream:
    """A named, seeded pseudo-random stream (wraps :mod:`random.Random`).

    Draw-for-draw identity is load-bearing: every BENCH metric and the
    calibration tests pin exact values, so each method below must
    consume exactly the same Mersenne-Twister words as the plain
    :mod:`random.Random` call it stands in for.  The fast paths are
    therefore *provably identical* rewrites, not approximations:

    - ``random``/``shuffle`` are the underlying C methods, pre-bound;
    - ``randint(lo, hi)`` is ``lo + _randbelow(hi - lo + 1)``, which is
      precisely what ``Random.randrange`` computes after its (pure,
      draw-free) argument validation;
    - ``choice(seq)`` is ``seq[_randbelow(len(seq))]``, ditto.

    Bulk float draws are available via :meth:`random_block` /
    :meth:`take_block`; see those docstrings for when batching is
    sound.
    """

    __slots__ = ("name", "_rng", "random", "shuffle", "_randbelow",
                 "_expovariate", "_block", "_block_pos")

    def __init__(self, root_seed: int, name: str) -> None:
        self.name = name
        # Derive a stable 64-bit seed from (root_seed, name) so streams
        # are independent of creation order.
        digest = zlib.crc32(name.encode("utf-8"))
        rng = random.Random((root_seed << 32) ^ digest)
        self._rng = rng
        #: Uniform float in [0, 1) — the C method itself, no wrapper.
        self.random = rng.random
        #: In-place Fisher-Yates shuffle — the C-backed method itself.
        self.shuffle = rng.shuffle
        self._randbelow = rng._randbelow
        self._expovariate = rng.expovariate
        self._block: list = []
        self._block_pos = 0

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return lo + self._randbelow(hi - lo + 1)

    def choice(self, seq: Sequence):
        """Uniform choice from a non-empty sequence."""
        return seq[self._randbelow(len(seq))]

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self.random() < p

    def expovariate(self, mean: float) -> float:
        """Exponentially distributed value with the given mean."""
        if mean <= 0:
            raise ConfigurationError(f"exponential mean must be positive, got {mean}")
        return self._expovariate(1.0 / mean)

    def geometric(self, mean: float) -> int:
        """Geometric run length (>= 1) with the given mean."""
        if mean < 1:
            raise ConfigurationError(f"geometric mean must be >= 1, got {mean}")
        if mean == 1:
            return 1
        p = 1.0 / mean
        n = 1
        draw = self.random
        while draw() >= p:
            n += 1
        return n

    # -- batched draws --------------------------------------------------

    def random_block(self, n: int) -> list:
        """Draw ``n`` uniform floats in one vectorized block.

        Element-for-element identical to ``n`` successive ``random()``
        calls (it IS ``n`` successive calls, made in bulk without
        Python-level dispatch per draw).  Sound wherever a consumer
        draws a *known* number of floats with no interleaved
        ``randint``/``choice``/``shuffle`` — those route through
        ``getrandbits`` and consume different generator words, so
        pre-drawing floats across one would reorder the stream.
        """
        if n < 0:
            raise ConfigurationError(f"block size must be >= 0, got {n}")
        draw = self.random
        return [draw() for _ in range(n)]

    def take_block(self, chunk: int = 256) -> float:
        """Incremental consumption of block-drawn floats.

        Returns the next float of an internally buffered
        :meth:`random_block`, refilling ``chunk`` draws at a time.  The
        caller owns the soundness argument: between a refill and the
        last buffered draw being consumed, the stream must see no
        ``getrandbits``-backed call (``randint``/``choice``/
        ``shuffle``), or ordering diverges from the unbatched stream.
        (The calibrated reference sources interleave ``randint`` and
        ``choice`` data-dependently, which is why they pre-bind methods
        instead of buffering — see docs/PERFORMANCE.md.)
        """
        if self._block_pos >= len(self._block):
            self._block = self.random_block(chunk)
            self._block_pos = 0
        value = self._block[self._block_pos]
        self._block_pos += 1
        return value

    @property
    def buffered_draws(self) -> int:
        """Block draws consumed from the source but not yet handed out."""
        return len(self._block) - self._block_pos


class StreamFactory:
    """Creates named :class:`RandomStream` objects from one root seed.

    >>> streams = StreamFactory(seed=42)
    >>> a = streams.stream("cpu0.data")
    >>> b = streams.stream("cpu1.data")
    >>> a.random() != b.random()
    True
    """

    __slots__ = ("seed", "_issued")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._issued: set = set()

    def stream(self, name: str) -> RandomStream:
        """Create the stream for ``name``; duplicate names are an error."""
        if name in self._issued:
            raise ConfigurationError(f"random stream {name!r} requested twice")
        self._issued.add(name)
        return RandomStream(self.seed, name)


class FractionalAccumulator:
    """Deterministic conversion of a fractional rate into integer counts.

    ``next()`` returns integers whose running mean converges to ``rate``
    (within one unit, binary floating point being what it is), using
    error-diffusion (Bresenham-style):

    >>> acc = FractionalAccumulator(0.4)
    >>> [acc.next() for _ in range(5)]
    [0, 0, 1, 0, 1]
    >>> acc = FractionalAccumulator(0.25)
    >>> sum(acc.next() for _ in range(100))
    25
    """

    __slots__ = ("rate", "_residue")

    def __init__(self, rate: float, phase: float = 0.0) -> None:
        if rate < 0:
            raise ConfigurationError(f"rate must be non-negative, got {rate}")
        if not 0.0 <= phase < 1.0:
            raise ConfigurationError(f"phase must be in [0, 1), got {phase}")
        self.rate = rate
        self._residue = phase

    def next(self) -> int:
        """Return the integer count for the next step."""
        self._residue += self.rate
        whole = int(self._residue)
        self._residue -= whole
        return whole

    def reset(self, phase: float = 0.0) -> None:
        """Restart the error diffusion from ``phase``."""
        if not 0.0 <= phase < 1.0:
            raise ConfigurationError(f"phase must be in [0, 1), got {phase}")
        self._residue = phase
