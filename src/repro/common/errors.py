"""Exception hierarchy for the Firefly reproduction.

All library-raised exceptions derive from :class:`ReproError`, so a
caller embedding the simulator can catch one type.
"""


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent machine/workload configuration.

    Raised eagerly, at construction time, so that a bad parameter never
    produces a silently wrong simulation.
    """


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state.

    These indicate bugs in a model (for example a CPU resuming before
    its bus transaction completed), not user error.
    """


class CoherenceViolation(SimulationError):
    """The coherence invariant checker found inconsistent cached data.

    Attributes
    ----------
    address:
        The longword address whose copies disagree.
    detail:
        Human-readable description of the disagreement.
    """

    def __init__(self, address, detail):
        super().__init__(f"coherence violation at {address:#x}: {detail}")
        self.address = address
        self.detail = detail


class ProtocolError(SimulationError):
    """A coherence protocol observed a stimulus it considers impossible.

    For example, a Firefly cache receiving a bus read for a line it
    believes it holds exclusively dirty while a second cache also
    responds.
    """


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked."""

    def __init__(self, blocked):
        names = ", ".join(sorted(blocked)) or "<unknown>"
        super().__init__(f"simulation deadlock; blocked processes: {names}")
        self.blocked = tuple(blocked)
