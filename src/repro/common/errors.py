"""Exception hierarchy for the Firefly reproduction.

All library-raised exceptions derive from :class:`ReproError`, so a
caller embedding the simulator can catch one type.
"""


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent machine/workload configuration.

    Raised eagerly, at construction time, so that a bad parameter never
    produces a silently wrong simulation.
    """


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state.

    These indicate bugs in a model (for example a CPU resuming before
    its bus transaction completed), not user error.
    """


class CoherenceViolation(SimulationError):
    """The coherence invariant checker found inconsistent cached data.

    Attributes
    ----------
    address:
        The longword address whose copies disagree.
    detail:
        Human-readable description of the disagreement.
    """

    def __init__(self, address, detail):
        super().__init__(f"coherence violation at {address:#x}: {detail}")
        self.address = address
        self.detail = detail


class ProtocolError(SimulationError):
    """A coherence protocol observed a stimulus it considers impossible.

    For example, a Firefly cache receiving a bus read for a line it
    believes it holds exclusively dirty while a second cache also
    responds.
    """


class UncorrectableMemoryError(SimulationError):
    """A memory read hit a multi-bit error beyond SECDED's reach.

    Single-bit flips are corrected (and counted) transparently by the
    ECC model in :class:`repro.memory.main_memory.MainMemory`; a
    double-bit flip is *detected* but not correctable, so the read
    must fail loudly rather than return silently wrong data.

    Attributes
    ----------
    word_address:
        The word whose stored value is unrecoverable.
    bits:
        How many bits were flipped.
    """

    def __init__(self, word_address, bits):
        super().__init__(
            f"uncorrectable {bits}-bit memory error at word "
            f"{word_address:#x} (SECDED corrects only single-bit flips)")
        self.word_address = word_address
        self.bits = bits


class BusTransferError(SimulationError):
    """An MBus transfer kept failing parity past the retry budget.

    The bus model retries a corrupted transfer with backoff; when every
    attempt fails the initiator cannot make progress and the error
    surfaces here rather than as silently dropped state.

    Attributes
    ----------
    op / address / initiator:
        The failing transaction.
    attempts:
        Total attempts made (initial try plus retries).
    """

    def __init__(self, op, address, initiator, attempts):
        super().__init__(
            f"bus transfer {op.value} at {address:#x} by initiator "
            f"{initiator} failed parity on all {attempts} attempts")
        self.op = op
        self.address = address
        self.initiator = initiator
        self.attempts = attempts


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    ``blocked`` holds ``(name, waitable_kind)`` pairs — the kind is the
    kernel's ``_blocked_on`` tag (``timeout``, ``event:<name>``,
    ``join:<name>``, ``resource:<name>``) so the message says not just
    *who* is stuck but *what kind of thing* each victim waits on, plus
    the simulation time at which the heap drained.

    ``edges`` optionally carries the wait-for graph as
    ``(waiter, resource, holder)`` triples (holder may be empty when
    nobody owns the waitable, e.g. an event or condition); when present
    the message names who waits on whom, and the postmortem tooling
    walks the same triples to find the cycle.
    """

    def __init__(self, blocked, now=None, edges=None):
        pairs = []
        for item in blocked:
            if isinstance(item, tuple):
                pairs.append((str(item[0]), str(item[1])))
            else:  # legacy callers pass pre-formatted strings
                pairs.append((str(item), "?"))
        pairs.sort()
        detail = ", ".join(f"{name} waiting on {kind}"
                           for name, kind in pairs) or "<unknown>"
        at = f" at t={now}" if now is not None else ""
        message = f"simulation deadlock{at}; stuck processes: {detail}"
        self.edges = tuple(sorted((str(w), str(r), str(h))
                                  for w, r, h in (edges or ())))
        if self.edges:
            wait_for = ", ".join(
                f"{waiter} -> {resource}" + (f" (held by {holder})"
                                             if holder else "")
                for waiter, resource, holder in self.edges)
            message += f"; wait-for: {wait_for}"
        super().__init__(message)
        self.blocked = tuple(pairs)
        self.now = now
