"""Topaz threads and their memory footprints.

"The Topaz notion of Thread is restricted to the thread of control"
(paper §4.1) — creation is cheap, many threads share an address space.
A :class:`TopazThread` carries exactly that: the program generator,
scheduling state, and a :class:`ThreadFootprint` describing the memory
its ordinary computation touches (its slice of shared program text, a
stack, local data).  When the scheduler migrates a thread, the
footprint's addresses move with it to another processor's cache — the
mechanism behind the paper's observation that migration leaves
redundant write-through traffic.
"""

from __future__ import annotations

import enum
import inspect
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import FractionalAccumulator, RandomStream
from repro.common.types import AccessKind, MemRef
from repro.processor.cpu import InstructionBundle
from repro.processor.mix import VAX_MIX, ReferenceMix


class ThreadState(enum.Enum):
    """Scheduling states of a thread."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class ThreadFootprint:
    """Generates the memory references of a thread's ordinary compute.

    Instruction fetches walk small loops in the thread's region of the
    (shared) program text; data reads favour the stack, then thread
    data; writes favour the stack.  ``base_cycles_per_instruction``
    optionally overrides the CPU's default instruction cost — the
    Threads exerciser uses this to model its light instruction mix.
    """

    def __init__(self, rng: RandomStream,
                 text_base: int, text_words: int,
                 stack_base: int, stack_words: int,
                 data_base: int, data_words: int,
                 mix: ReferenceMix = VAX_MIX,
                 loop_length: int = 24,
                 loop_iterations: float = 6.0,
                 stack_read_bias: float = 0.6,
                 stack_write_bias: float = 0.7,
                 sweep_fraction: float = 0.0,
                 sweep_base: int = 0, sweep_words: int = 0,
                 base_cycles_per_instruction: Optional[float] = None) -> None:
        if min(text_words, stack_words, data_words) < 1:
            raise ConfigurationError("footprint regions must be non-empty")
        if sweep_fraction > 0 and sweep_words < 1:
            raise ConfigurationError(
                "a sweep fraction needs a sweep region")
        self.rng = rng
        self.text_base = text_base
        self.text_words = text_words
        self.stack_base = stack_base
        self.stack_words = stack_words
        self.data_base = data_base
        self.data_words = data_words
        self.stack_read_bias = stack_read_bias
        self.stack_write_bias = stack_write_bias
        self.loop_length = min(loop_length, text_words)
        self.loop_iterations = loop_iterations
        # Displacement sweep: a slice of data reads walks sequentially
        # through a larger scratch region, modelling the "activity of
        # another process" (or phase changes) that displaces stale
        # lines — without it, an update protocol keeps a migrated
        # thread's old copies fresh in the old cache forever.
        self.sweep_fraction = sweep_fraction
        self.sweep_base = sweep_base
        self.sweep_words = sweep_words
        self._sweep_cursor = 0

        self._ir = FractionalAccumulator(mix.instruction_reads)
        self._dr = FractionalAccumulator(mix.data_reads)
        self._dw = FractionalAccumulator(mix.data_writes)
        self._base = (FractionalAccumulator(base_cycles_per_instruction)
                      if base_cycles_per_instruction is not None else None)

        self._pc = text_base
        self._loop_start = text_base
        self._loop_left = self.loop_length
        self._iters_left = max(1, rng.geometric(loop_iterations))
        self._jumped = False

    def bundle(self) -> InstructionBundle:
        """One instruction's worth of references."""
        self._jumped = False
        refs: List[MemRef] = []
        append = refs.append
        # The three accumulator draws are inlined (error diffusion is
        # two float ops) — .next() frames dominate this hot method.
        acc = self._ir
        residue = acc._residue + acc.rate
        whole = int(residue)
        acc._residue = residue - whole
        for _ in range(whole):
            append(MemRef(self._code_word(), AccessKind.INSTRUCTION_READ))
        acc = self._dr
        residue = acc._residue + acc.rate
        whole = int(residue)
        acc._residue = residue - whole
        for _ in range(whole):
            append(MemRef(self._read_word(), AccessKind.DATA_READ))
        acc = self._dw
        residue = acc._residue + acc.rate
        whole = int(residue)
        acc._residue = residue - whole
        for _ in range(whole):
            append(MemRef(self._write_word(), AccessKind.DATA_WRITE))
        return InstructionBundle(
            refs=tuple(refs),
            is_jump=self._jumped,
            prefetch_addresses=(self._pc, self._pc + 1),
            base_cycles=self._base.next() if self._base is not None else None)

    def _code_word(self) -> int:
        if self._loop_left == 0:
            self._jumped = True
            self._iters_left -= 1
            if self._iters_left <= 0:
                offset = self.rng.randint(0, max(0, self.text_words
                                                 - self.loop_length - 1))
                self._loop_start = self.text_base + offset
                self._iters_left = max(1, self.rng.geometric(
                    self.loop_iterations))
            self._pc = self._loop_start
            self._loop_left = self.loop_length
        word = self._pc
        self._pc += 1
        self._loop_left -= 1
        return word

    def _read_word(self) -> int:
        # rng.random() < p IS bernoulli(p) — same single draw, minus
        # the wrapper frame (these run several times per instruction).
        rng = self.rng
        if (self.sweep_fraction > 0
                and rng.random() < self.sweep_fraction):
            word = self.sweep_base + self._sweep_cursor
            self._sweep_cursor = (self._sweep_cursor + 1) % self.sweep_words
            return word
        if rng.random() < self.stack_read_bias:
            return self.stack_base + rng.randint(0, self.stack_words - 1)
        return self.data_base + rng.randint(0, self.data_words - 1)

    def _write_word(self) -> int:
        rng = self.rng
        if rng.random() < self.stack_write_bias:
            return self.stack_base + rng.randint(0, self.stack_words - 1)
        return self.data_base + rng.randint(0, self.data_words - 1)


class TopazThread:
    """One thread of control."""

    def __init__(self, tid: int, name: str, fn: Callable, args: Tuple,
                 footprint: ThreadFootprint, tcb_address: int,
                 space=None) -> None:
        if not inspect.isgeneratorfunction(fn):
            raise ConfigurationError(
                f"thread body {fn!r} must be a generator function "
                f"(it yields topaz ops)")
        self.tid = tid
        self.name = name or f"thread{tid}"
        self.gen = fn(*args)
        self.footprint = footprint
        self.tcb_address = tcb_address
        self.space = space

        self.state = ThreadState.READY
        self.last_cpu: Optional[int] = None
        self.blocked_on: Optional[str] = None
        self.result: Any = None
        self.joiners: Deque["TopazThread"] = deque()
        self.wait_mutex = None  # set while blocked in Condition.Wait
        self.ctx = None  # TraceContext, assigned by the kernel at creation
        # Absolute sim-time deadline (cycles), or None.  Maintained by
        # the serving layer; forked children inherit it so a nested
        # call can never outlive its parent's budget.
        self.deadline: Optional[int] = None

        # Execution-expansion state, driven by the kernel:
        self.compute_remaining = 0
        self.pending: Deque[InstructionBundle] = deque()
        self.inbox: Any = None

        # Accounting:
        self.migrations = 0
        self.dispatches = 0
        self.instructions_executed = 0

    @property
    def done(self) -> bool:
        return self.state is ThreadState.DONE

    def note_dispatch(self, cpu_id: int) -> None:
        """Record a dispatch, counting migrations across CPUs."""
        if self.last_cpu is not None and self.last_cpu != cpu_id:
            self.migrations += 1
        self.last_cpu = cpu_id
        self.dispatches += 1
        self.state = ThreadState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = f" on cpu{self.last_cpu}" if self.last_cpu is not None else ""
        return f"<TopazThread {self.name} {self.state.value}{extra}>"
