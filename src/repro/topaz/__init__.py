"""Topaz: the Firefly's software system, as a modelled threads runtime.

Paper §4: Topaz's programmer-visible facilities are *threads* —
multiple cheap threads of control per address space, with Fork/Join,
Mutex and Condition primitives (the Modula-2+ Threads module) — and
pervasive *remote procedure call*.  The Nub (VAX kernel mode) provides
thread scheduling and the RPC transport; the scheduler "goes to some
effort to avoid process migration" because migrated working sets leave
redundant write-through traffic behind (§5.1).

This package models that runtime *on top of the simulated hardware*:
thread programs are Python generators yielding operations
(:mod:`repro.topaz.ops`); mutexes, condition variables, thread control
blocks and the ready queue are real words in simulated shared memory,
so synchronisation and scheduling generate genuine coherence traffic —
the traffic Table 2 measures.
"""

from repro.topaz.address_space import AddressSpace, SpaceKind
from repro.topaz.kernel import TopazKernel, TopazParams
from repro.topaz.ops import (
    Broadcast,
    Compute,
    DeviceCall,
    Fork,
    Join,
    Lock,
    Read,
    Signal,
    Unlock,
    Wait,
    Write,
    YieldCpu,
)
from repro.topaz.rpc import RpcParams, RpcTransport
from repro.topaz.scheduler import Scheduler
from repro.topaz.sync import Condition, Mutex
from repro.topaz.thread import ThreadState, TopazThread

__all__ = [
    "AddressSpace",
    "Broadcast",
    "Compute",
    "Condition",
    "DeviceCall",
    "Fork",
    "Join",
    "Lock",
    "Mutex",
    "Read",
    "RpcParams",
    "RpcTransport",
    "Scheduler",
    "Signal",
    "SpaceKind",
    "ThreadState",
    "TopazKernel",
    "TopazParams",
    "TopazThread",
    "Unlock",
    "Wait",
    "Write",
    "YieldCpu",
]
