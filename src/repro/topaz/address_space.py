"""Topaz address spaces (the boxes of Figure 2).

Topaz distinguishes: the *Nub* (VAX kernel mode: VM, scheduling, RPC
transport), *Topaz* address spaces (multi-threaded, OS via RPC — Taos
itself, the TTD debugger server, the Trestle window manager are such
spaces), and *Ultrix* address spaces (single-threaded binary-
compatibility environments).

In the model an address space is mostly structural — a name, a kind and
a word-address region for its threads' footprints — but keeping the
structure lets the Figure 2 benchmark render the real object graph and
lets workloads place threads in distinct spaces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigurationError


class SpaceKind(enum.Enum):
    """The kinds of address space Figure 2 distinguishes."""

    NUB = "nub"
    TAOS = "taos"
    TOPAZ_APP = "topaz"
    ULTRIX_APP = "ultrix"
    TTD = "ttd"
    TRESTLE = "trestle"


@dataclass(frozen=True)
class AddressSpace:
    """One address space: a named region of the word address space."""

    name: str
    kind: SpaceKind
    base_word: int
    size_words: int

    def __post_init__(self) -> None:
        if self.size_words <= 0:
            raise ConfigurationError(
                f"address space {self.name!r} must have positive size")
        if self.base_word < 0:
            raise ConfigurationError(
                f"address space {self.name!r} has negative base")

    @property
    def end_word(self) -> int:
        return self.base_word + self.size_words

    @property
    def multi_threaded(self) -> bool:
        """Ultrix spaces support exactly one thread (paper §4.1)."""
        return self.kind is not SpaceKind.ULTRIX_APP

    def contains(self, word_address: int) -> bool:
        return self.base_word <= word_address < self.end_word
