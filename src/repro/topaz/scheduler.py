"""The Topaz thread scheduler.

Paper §5.1: because conditional write-through keeps paying for sharing
as long as a datum sits in two caches, "the Topaz scheduler goes to
some effort to avoid process migration" — a migrated thread's working
set lingers in the old cache, and every write to it writes through
until the old copies are displaced.

:class:`Scheduler` implements that policy: with migration avoidance on
(the default), a CPU looking for work prefers, among the first
``affinity_window`` ready threads, one that last ran on it; only when
none qualifies does it take the queue head (work conservation — a
runnable thread never waits for an idle machine).  With avoidance off,
CPUs always take the head, maximising migration.  The ablation bench
(A3 in DESIGN.md) measures the write-through traffic difference.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.common.errors import ConfigurationError
from repro.telemetry.probe import NULL_PROBE
from repro.topaz.thread import ThreadState, TopazThread


class Scheduler:
    """A single ready queue with optional processor affinity."""

    def __init__(self, avoid_migration: bool = True,
                 affinity_window: int = 4) -> None:
        if affinity_window < 1:
            raise ConfigurationError("affinity_window must be >= 1")
        self.avoid_migration = avoid_migration
        self.affinity_window = affinity_window
        self._ready: Deque[TopazThread] = deque()
        self.enqueues = 0
        self.picks = 0
        self.affinity_hits = 0
        #: Telemetry probe; inert unless a TelemetryHub is attached.
        self.probe = NULL_PROBE

    def enqueue(self, thread: TopazThread) -> None:
        """Make a thread runnable (at the tail)."""
        thread.state = ThreadState.READY
        thread.blocked_on = None
        self._ready.append(thread)
        self.enqueues += 1
        if self.probe.active:
            ctx = thread.ctx
            self.probe.instant("sched.ready", "sched", thread=thread.name,
                               tid=thread.tid,
                               span=ctx.span_id if ctx else 0,
                               depth=len(self._ready))

    def pick(self, cpu_id: int) -> Optional[TopazThread]:
        """Choose the next thread for ``cpu_id``; None if queue empty."""
        if not self._ready:
            return None
        self.picks += 1
        if self.avoid_migration:
            for position, thread in enumerate(self._ready):
                if position >= self.affinity_window:
                    break
                if thread.last_cpu == cpu_id or thread.last_cpu is None:
                    del self._ready[position]
                    self.affinity_hits += 1
                    return thread
        return self._ready.popleft()

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        policy = "affinity" if self.avoid_migration else "fifo"
        return f"<Scheduler {policy} ready={len(self._ready)}>"
