"""The Topaz kernel: threads, scheduling and the Nub, on simulated memory.

The kernel is a *reference source* for every CPU in a
:class:`~repro.system.machine.FireflyMachine`: each processor, when it
wants its next instruction, asks the kernel, and the kernel answers
from the thread it is running there — ordinary footprint instructions
for ``Compute``, explicit loads/stores for synchronisation operations,
and kernel-mode context-switch instructions when threads block,
yield, or exit.

Everything the scheduler and the synchronisation primitives touch is a
real word of simulated memory:

- the ready-queue head/lock words and thread control blocks live in the
  machine's *shared region*, so scheduling activity by different CPUs
  ping-pongs those lines exactly as the paper's Threads exerciser did
  ("75K of the 225K writes done by one CPU (33%) were write-throughs
  that received MShared");
- mutex and condition words are shared-heap words written with real
  values (held/free, signal sequence numbers), auditable by the
  coherence checker;
- thread footprints (text slice, stack, local data) move between caches
  when a thread migrates — the redundant-write-through cost that makes
  the Topaz scheduler prefer affinity.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.causal.context import ContextAllocator, TraceContext
from repro.common.errors import (ConfigurationError, DeadlockError,
                                 SimulationError)
from repro.common.events import Event
from repro.common.stats import StatSet
from repro.common.types import AccessKind, MemRef
from repro.telemetry.probe import NULL_PROBE
from repro.processor.cpu import InstructionBundle, Processor
from repro.processor.mix import VAX_MIX, ReferenceMix
from repro.system.config import FireflyConfig
from repro.system.machine import FireflyMachine
from repro.topaz import ops
from repro.topaz.address_space import AddressSpace, SpaceKind
from repro.topaz.scheduler import Scheduler
from repro.topaz.sync import Condition, Mutex
from repro.topaz.thread import ThreadFootprint, ThreadState, TopazThread

from dataclasses import dataclass


@dataclass(frozen=True)
class TopazParams:
    """Tunables of the modelled runtime.

    ``context_switch_instructions`` covers the Nub's dispatch path
    (save/restore, queue manipulation).  ``thread_base_cycles`` — when
    set — overrides the per-instruction cost of thread compute, to
    model programs whose instruction mix is lighter than the VAX
    average (the Table 2 exerciser).  ``time_slice_instructions`` is
    the Nub's preemption quantum: a thread that computes that long
    while others are runnable is placed back on the ready queue
    (None disables preemption).
    """

    context_switch_instructions: int = 40
    time_slice_instructions: Optional[int] = 1500
    interrupt_service_instructions: int = 20
    """Kernel-mode instructions the *I/O processor* (CPU 0) executes to
    service a device completion before the waiting thread is made
    ready — the asymmetric-I/O cost of §3: devices interrupt only the
    primary board.  Zero disables the charge."""
    thread_stack_words: int = 96
    thread_data_words: int = 256
    thread_text_words: int = 384
    text_region_words: int = 16384
    kernel_text_words: int = 2048
    tcb_words: int = 16
    avoid_migration: bool = True
    affinity_window: int = 4
    thread_mix: ReferenceMix = VAX_MIX
    thread_base_cycles: Optional[float] = None
    thread_loop_iterations: float = 6.0
    thread_sweep_fraction: float = 0.0
    thread_sweep_words: int = 2048

    def __post_init__(self) -> None:
        if self.context_switch_instructions < 1:
            raise ConfigurationError(
                "context switch must cost at least one instruction")
        for name in ("thread_stack_words", "thread_data_words",
                     "thread_text_words", "text_region_words",
                     "kernel_text_words", "tcb_words"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be positive")


class TopazKernel:
    """The modelled Topaz runtime bound to one Firefly machine."""

    def __init__(self, config: FireflyConfig,
                 params: Optional[TopazParams] = None,
                 sim=None) -> None:
        self.params = params or TopazParams()
        self.machine = FireflyMachine(config,
                                      source_factory=self._make_source,
                                      sim=sim)
        self.sim = self.machine.sim
        self.stats = StatSet("topaz")
        self.scheduler = Scheduler(
            avoid_migration=self.params.avoid_migration,
            affinity_window=self.params.affinity_window)

        n = config.processors
        self._current: List[Optional[TopazThread]] = [None] * n
        self._switch_queue: List[Deque[InstructionBundle]] = [
            deque() for _ in range(n)]
        self._idle_events: List[Optional[Event]] = [None] * n
        self._slice_left: List[int] = [0] * n

        #: Telemetry probe; inert unless a TelemetryHub is attached.
        self.probe = NULL_PROBE
        self._cpu_tracks = [f"cpu{i}" for i in range(n)]
        self._run_since: List[Optional[int]] = [None] * n

        self.threads: List[TopazThread] = []
        self._next_tid = 0
        self._token = 1 << 50

        #: Deterministic trace/span id source (plain counters — never
        #: the machine's seeded RNG, so tracing cannot perturb a run).
        self.causal = ContextAllocator()
        self._cpu_ctx: List[Optional[TraceContext]] = [None] * n
        self.mutexes: List[Mutex] = []
        self.conditions: List[Condition] = []

        # Shared-heap allocator (scheduler data, TCBs, sync words).
        shared = self.machine.shared_region
        self._shared_cursor = shared.base_word
        self._shared_end = shared.base_word + shared.words
        # Private allocator (text, stacks, thread data) from word 0 up.
        self._private_cursor = 0
        self._private_end = shared.base_word

        self._ready_head_addr = self.alloc_shared(1, "ready queue head")
        self._ready_lock_addr = self.alloc_shared(1, "ready queue lock")
        self._text_base = self.alloc_private(self.params.text_region_words,
                                             "program text")
        self._kernel_text = self.alloc_private(self.params.kernel_text_words,
                                               "kernel text")
        self._kernel_pc = [self._kernel_text] * n
        self._rng = self.machine.streams.stream("topaz.kernel")

        # Every CPU fields scheduler IPIs (kicks from _kick_idle_cpu
        # and device-completion interrupts aimed at the I/O processor).
        # The handler only counts: the wake itself travels through the
        # idle Event, matching the hardware's separation of the
        # sideband strobe from the software wakeup path.
        for cpu_id in range(n):
            self.machine.mbus.register_interrupt_handler(
                cpu_id, self._ipi_received)

        # Lets the bus stamp trace/span onto bus.op events: the cache
        # initiator id equals the CPU id, and this kernel knows which
        # thread context each CPU is running.  Only consulted when the
        # bus probe is active.
        self.machine.mbus.context_source = self._context_for_initiator

        self.address_spaces: List[AddressSpace] = []
        self._default_space = self._create_default_spaces()

    @classmethod
    def build(cls, processors: int = 5, threads_hint: int = 32,
              params: Optional[TopazParams] = None,
              sim=None, **config_overrides) -> "TopazKernel":
        """Convenience constructor that sizes the shared region.

        The shared region must hold the scheduler words, every TCB and
        the sync objects; ``threads_hint`` reserves generous room.
        ``sim`` places this machine on an existing simulator
        (multi-machine experiments).
        """
        shared_words = config_overrides.pop(
            "shared_region_words", 4096 + 64 * max(threads_hint, 1))
        config = FireflyConfig(processors=processors,
                               shared_region_words=shared_words,
                               **config_overrides)
        return cls(config, params=params, sim=sim)

    # -- allocation -----------------------------------------------------

    def alloc_shared(self, words: int, what: str = "shared data") -> int:
        """Allocate words in the machine-wide shared region."""
        if self._shared_cursor + words > self._shared_end:
            raise ConfigurationError(
                f"shared region exhausted allocating {what} "
                f"({words} words); enlarge shared_region_words")
        base = self._shared_cursor
        self._shared_cursor += words
        return base

    def alloc_private(self, words: int, what: str = "private data") -> int:
        """Allocate words in the general (per-thread-private) area."""
        if self._private_cursor + words > self._private_end:
            raise ConfigurationError(
                f"memory exhausted allocating {what} ({words} words)")
        base = self._private_cursor
        self._private_cursor += words
        return base

    def _create_default_spaces(self) -> AddressSpace:
        """The standing boxes of Figure 2."""
        layout = [
            ("Nub", SpaceKind.NUB, self._kernel_text,
             self.params.kernel_text_words),
            ("Taos", SpaceKind.TAOS, self._text_base, 4096),
            ("UserTTD", SpaceKind.TTD, self._text_base + 4096, 1024),
            ("Trestle", SpaceKind.TRESTLE, self._text_base + 5120, 1024),
        ]
        for name, kind, base, size in layout:
            self.address_spaces.append(AddressSpace(name, kind, base, size))
        default = AddressSpace("TopazApp", SpaceKind.TOPAZ_APP,
                               self._text_base + 6144,
                               self.params.text_region_words - 6144)
        self.address_spaces.append(default)
        return default

    def create_space(self, name: str, kind: SpaceKind = SpaceKind.TOPAZ_APP,
                     size_words: int = 1024) -> AddressSpace:
        """Create an application address space (structural)."""
        base = self.alloc_private(size_words, f"space {name}")
        space = AddressSpace(name, kind, base, size_words)
        self.address_spaces.append(space)
        return space

    def threads_in_space(self, space: AddressSpace) -> List[TopazThread]:
        return [t for t in self.threads if t.space is space]

    # -- object creation ------------------------------------------------------

    def mutex(self, name: str = "") -> Mutex:
        """Allocate a mutex backed by one shared word."""
        address = self.alloc_shared(1, f"mutex {name or '?'}")
        mutex = Mutex(address, name or f"mutex@{address:#x}")
        self.mutexes.append(mutex)
        return mutex

    def condition(self, name: str = "") -> Condition:
        """Allocate a condition variable backed by one shared word."""
        address = self.alloc_shared(1, f"condition {name or '?'}")
        condition = Condition(address, name or f"cond@{address:#x}")
        self.conditions.append(condition)
        return condition

    def fork(self, fn, *args, name: str = "",
             space: Optional[AddressSpace] = None) -> TopazThread:
        """Create and enqueue a thread from host code (pre-run setup)."""
        thread = self._create_thread(fn, tuple(args), name, space)
        self._make_ready(thread)
        return thread

    def _create_thread(self, fn, args: Tuple, name: str,
                       space: Optional[AddressSpace],
                       parent: Optional[TopazThread] = None) -> TopazThread:
        tid = self._next_tid
        self._next_tid += 1
        space = space or self._default_space
        if not space.multi_threaded and self.threads_in_space(space):
            raise ConfigurationError(
                f"Ultrix address space {space.name!r} supports only one "
                f"thread (paper §4.1)")
        params = self.params
        tcb = self.alloc_shared(params.tcb_words, f"TCB {name or tid}")
        stack = self.alloc_private(params.thread_stack_words,
                                   f"stack {name or tid}")
        data = self.alloc_private(params.thread_data_words,
                                  f"data {name or tid}")
        text_span = max(1, params.text_region_words - params.thread_text_words)
        text = self._text_base + self._rng.randint(0, text_span - 1)
        sweep_base = sweep_words = 0
        if params.thread_sweep_fraction > 0:
            sweep_words = params.thread_sweep_words
            sweep_base = self.alloc_private(sweep_words,
                                            f"sweep {name or tid}")
        footprint = ThreadFootprint(
            rng=self.machine.streams.stream(f"thread{tid}.footprint"),
            text_base=text, text_words=params.thread_text_words,
            stack_base=stack, stack_words=params.thread_stack_words,
            data_base=data, data_words=params.thread_data_words,
            mix=params.thread_mix,
            loop_iterations=params.thread_loop_iterations,
            sweep_fraction=params.thread_sweep_fraction,
            sweep_base=sweep_base, sweep_words=sweep_words,
            base_cycles_per_instruction=params.thread_base_cycles)
        thread = TopazThread(tid, name, fn, args, footprint, tcb, space)
        # Host-forked threads root a new trace; ops.Fork children join
        # their parent's trace one span down.
        thread.ctx = (self.causal.child(parent.ctx) if parent is not None
                      else self.causal.root())
        self.threads.append(thread)
        self.stats.incr("threads_created")
        return thread

    # -- the reference-source face --------------------------------------------

    def _make_source(self, cpu_id: int, machine: FireflyMachine):
        kernel = self

        class _TopazSource:
            def next_instruction(self, cpu: Processor):
                return kernel._next_instruction(cpu_id)

        return _TopazSource()

    def _next_instruction(self, cpu_id: int):
        switch = self._switch_queue[cpu_id]
        if switch:
            return switch.popleft()

        thread = self._current[cpu_id]
        if thread is None:
            candidate = self.scheduler.pick(cpu_id)
            if candidate is None:
                event = self.sim.event(f"topaz.idle{cpu_id}")
                self._idle_events[cpu_id] = event
                self.stats.incr("idle_waits")
                return event
            self._dispatch(cpu_id, candidate)
            if switch:
                return switch.popleft()
            thread = candidate

        quantum = self.params.time_slice_instructions
        while True:
            if (quantum is not None and self._slice_left[cpu_id] <= 0
                    and self.scheduler.ready_count > 0):
                # Preemption: the quantum expired with other work ready.
                self.stats.incr("preemptions")
                self._note_offcpu(cpu_id, thread, "preempt")
                self._current[cpu_id] = None
                self.scheduler.enqueue(thread)
                return self._next_instruction(cpu_id)
            if thread.compute_remaining > 0:
                thread.compute_remaining -= 1
                thread.instructions_executed += 1
                self._slice_left[cpu_id] -= 1
                return thread.footprint.bundle()
            if thread.pending:
                self._slice_left[cpu_id] -= 1
                return thread.pending.popleft()
            if not self._advance(cpu_id, thread):
                return self._next_instruction(cpu_id)

    def _dispatch(self, cpu_id: int, thread: TopazThread) -> None:
        previous_cpu = thread.last_cpu
        was_elsewhere = (previous_cpu is not None
                         and previous_cpu != cpu_id)
        thread.note_dispatch(cpu_id)
        self._current[cpu_id] = thread
        self._cpu_ctx[cpu_id] = thread.ctx
        self._run_since[cpu_id] = self.sim.now
        if self.params.time_slice_instructions is not None:
            self._slice_left[cpu_id] = self.params.time_slice_instructions
        self.stats.incr("dispatches")
        self.stats.incr("context_switches")
        if was_elsewhere:
            self.stats.incr("migrations")
            if self.probe.active:
                # The paper's costly case: the thread's working set is
                # still in the old CPU's cache, so every write to it
                # writes through until those copies age out.
                self.probe.instant("sched.migrate", self._cpu_tracks[cpu_id],
                                   thread=thread.name,
                                   from_cpu=previous_cpu, to_cpu=cpu_id)
        self._switch_queue[cpu_id].extend(
            self._context_switch_bundles(cpu_id, thread))

    def _note_offcpu(self, cpu_id: int, thread: TopazThread,
                     reason: str) -> None:
        """Emit the dispatch-to-descheduling run slice for a CPU track."""
        start = self._run_since[cpu_id]
        self._run_since[cpu_id] = None
        if self.probe.active and start is not None:
            ctx = thread.ctx
            self.probe.complete("sched.run", self._cpu_tracks[cpu_id],
                                start, self.sim.now - start,
                                thread=thread.name, tid=thread.tid,
                                trace=ctx.trace_id if ctx else 0,
                                span=ctx.span_id if ctx else 0,
                                reason=reason)

    def _context_switch_bundles(self, cpu_id: int,
                                incoming: TopazThread) -> List[InstructionBundle]:
        """Kernel-mode dispatch: touches the shared scheduler state.

        Each instruction fetches from the Nub's text and alternates
        over the ready-queue words and the incoming thread's TCB —
        writes included, so dispatch on different CPUs produces the
        shared write-through traffic Table 2 exhibits.
        """
        bundles = []
        tcb = incoming.tcb_address
        words = self.params.tcb_words
        for i in range(self.params.context_switch_instructions):
            refs = [MemRef(self._kernel_code_word(cpu_id),
                           AccessKind.INSTRUCTION_READ)]
            values = ()
            slot = tcb + (i % words)
            phase = i % 6
            if phase == 0:
                refs.append(MemRef(self._ready_head_addr,
                                   AccessKind.DATA_READ))
            elif phase == 1:
                refs.append(MemRef(self._ready_lock_addr,
                                   AccessKind.DATA_WRITE))
                values = (self._next_token(),)
            elif phase in (2, 4):
                refs.append(MemRef(slot, AccessKind.DATA_READ))
            elif phase == 3:
                refs.append(MemRef(slot, AccessKind.DATA_WRITE))
                values = (self._next_token(),)
            # phase 5: register shuffling, instruction fetch only.
            bundles.append(InstructionBundle(refs=tuple(refs),
                                             write_values=values))
        return bundles

    def _kernel_code_word(self, cpu_id: int) -> int:
        pc = self._kernel_pc[cpu_id]
        self._kernel_pc[cpu_id] = (self._kernel_text
                                   + (pc - self._kernel_text + 1)
                                   % self.params.kernel_text_words)
        return pc

    def _next_token(self) -> int:
        self._token += 1
        return self._token

    # -- program advancement ------------------------------------------------------

    def _advance(self, cpu_id: int, thread: TopazThread) -> bool:
        """Run the thread's generator one step; False if it left the CPU."""
        inbox, thread.inbox = thread.inbox, None
        try:
            op = thread.gen.send(inbox)
        except StopIteration as stop:
            self._finish(cpu_id, thread, stop.value)
            return False

        if isinstance(op, ops.Compute):
            thread.compute_remaining = op.instructions
            return True
        if isinstance(op, ops.Read):
            thread.inbox = self._coherent_value(op.address)
            thread.pending.append(self._op_bundle(
                thread, [MemRef(op.address, AccessKind.DATA_READ)]))
            return True
        if isinstance(op, ops.Write):
            thread.pending.append(self._op_bundle(
                thread, [MemRef(op.address, AccessKind.DATA_WRITE)],
                (op.value,)))
            return True
        if isinstance(op, ops.Lock):
            return self._do_lock(cpu_id, thread, op.mutex)
        if isinstance(op, ops.Unlock):
            self._do_unlock(thread, op.mutex)
            return True
        if isinstance(op, ops.Wait):
            return self._do_wait(cpu_id, thread, op.condition, op.mutex)
        if isinstance(op, ops.Signal):
            self._do_signal(thread, op.condition, broadcast=False)
            return True
        if isinstance(op, ops.Broadcast):
            self._do_signal(thread, op.condition, broadcast=True)
            return True
        if isinstance(op, ops.Fork):
            child = self._create_thread(op.fn, op.args, op.name, thread.space,
                                        parent=thread)
            # Deadline propagation: a child spawned inside a deadlined
            # request shares the request's remaining budget.
            child.deadline = thread.deadline
            self.stats.incr("forks")
            if self.probe.active:
                ctx = child.ctx
                self.probe.instant("causal.fork", self._cpu_tracks[cpu_id],
                                   parent=thread.name, child=child.name,
                                   tid=child.tid, trace=ctx.trace_id,
                                   span=ctx.span_id,
                                   parent_span=ctx.parent_id)
            # Touch the child's TCB: thread creation is cheap but real.
            thread.pending.append(self._op_bundle(
                thread, [MemRef(child.tcb_address, AccessKind.DATA_WRITE)],
                (self._next_token(),)))
            self._make_ready(child)
            thread.inbox = child
            return True
        if isinstance(op, ops.Join):
            target: TopazThread = op.thread
            self.stats.incr("joins")
            if target.done:
                thread.inbox = target.result
                return True
            target.joiners.append(thread)
            self._block(cpu_id, thread, f"join:{target.name}")
            return False
        if isinstance(op, ops.CurrentThread):
            thread.inbox = thread
            return True
        if isinstance(op, ops.YieldCpu):
            self.stats.incr("yields")
            self._note_offcpu(cpu_id, thread, "yield")
            self._current[cpu_id] = None
            self.scheduler.enqueue(thread)
            return False
        if isinstance(op, ops.DeviceCall):
            self.stats.incr("device_calls")
            self.sim.process(self._device_wrapper(thread, op.gen),
                             name=f"dev:{op.label}:{thread.name}")
            self._block(cpu_id, thread, f"device:{op.label}")
            return False
        raise SimulationError(
            f"thread {thread.name} yielded unknown op {op!r}")

    def _device_wrapper(self, thread: TopazThread, gen):
        """Run a device operation; wake the blocked thread when done.

        Completion is serviced on the I/O processor (CPU 0): the
        interrupt routine's instructions are queued there, touching the
        woken thread's TCB — the §3 asymmetry, visible as extra load on
        the primary board under I/O-heavy workloads.
        """
        result = yield from gen
        thread.inbox = result
        wake_cause = thread.blocked_on or "device"
        if self.params.interrupt_service_instructions > 0:
            self.stats.incr("device_interrupts")
            self._switch_queue[0].extend(
                self._interrupt_bundles(thread))
            self.machine.mbus.send_interrupt(0, sender=-2)
            # If CPU 0 is idle, the pending interrupt work must pull it
            # out of its idle wait.
            event = self._idle_events[0]
            if event is not None and not event.fired:
                self._idle_events[0] = None
                event.succeed()
        self._make_ready(thread, cause=wake_cause)

    def _interrupt_bundles(self, thread: TopazThread):
        """The interrupt service routine's instruction stream."""
        bundles = []
        for i in range(self.params.interrupt_service_instructions):
            refs = [MemRef(self._kernel_code_word(0),
                           AccessKind.INSTRUCTION_READ)]
            values = ()
            if i % 5 == 2:
                refs.append(MemRef(thread.tcb_address + (i % 8),
                                   AccessKind.DATA_WRITE))
                values = (self._next_token(),)
            elif i % 5 == 4:
                refs.append(MemRef(self._ready_head_addr,
                                   AccessKind.DATA_READ))
            bundles.append(InstructionBundle(refs=tuple(refs),
                                             write_values=values))
        return bundles

    # -- synchronisation mechanics ----------------------------------------------------

    def _do_lock(self, cpu_id: int, thread: TopazThread,
                 mutex: Mutex) -> bool:
        test_and_set = [MemRef(mutex.address, AccessKind.DATA_READ),
                        MemRef(mutex.address, AccessKind.DATA_WRITE)]
        if not mutex.held:
            mutex.acquire_by(thread)
            self.stats.incr("lock_acquires")
            thread.pending.append(self._op_bundle(thread, test_and_set, (1,)))
            return True
        self.stats.incr("lock_contended")
        mutex.contentions += 1
        mutex.waiters.append(thread)
        # The failed interlocked test still cost a bus-visible probe; it
        # executes while this CPU switches away.
        self._switch_queue[cpu_id].append(self._op_bundle(
            thread, [MemRef(mutex.address, AccessKind.DATA_READ)]))
        self._block(cpu_id, thread, f"lock:{mutex.name}")
        return False

    def _do_unlock(self, thread: TopazThread, mutex: Mutex) -> None:
        successor = mutex.release_by(thread)
        self.stats.incr("lock_releases")
        value = 1 if successor is not None else 0
        thread.pending.append(self._op_bundle(
            thread, [MemRef(mutex.address, AccessKind.DATA_WRITE)], (value,)))
        if successor is not None:
            self._make_ready(successor, cause=f"unlock:{mutex.name}",
                             waker=thread)

    def _do_wait(self, cpu_id: int, thread: TopazThread,
                 condition: Condition, mutex: Mutex) -> bool:
        self.stats.incr("waits")
        successor = mutex.release_by(thread)
        # Touch both words: read the condition, drop the mutex.
        self._switch_queue[cpu_id].append(self._op_bundle(
            thread,
            [MemRef(condition.address, AccessKind.DATA_READ),
             MemRef(mutex.address, AccessKind.DATA_WRITE)],
            (1 if successor is not None else 0,)))
        if successor is not None:
            self._make_ready(successor, cause=f"unlock:{mutex.name}",
                             waker=thread)
        condition.add_waiter(thread)
        thread.wait_mutex = mutex
        self._block(cpu_id, thread, f"wait:{condition.name}")
        return False

    def _do_signal(self, thread: TopazThread, condition: Condition,
                   broadcast: bool) -> None:
        self.stats.incr("broadcasts" if broadcast else "signals")
        woken = (condition.take_all() if broadcast
                 else [w for w in [condition.take_one()] if w is not None])
        thread.pending.append(self._op_bundle(
            thread, [MemRef(condition.address, AccessKind.DATA_WRITE)],
            (condition.sequence,)))
        for waiter in woken:
            self._wake_from_wait(waiter, signaller=thread,
                                 condition=condition)

    def _wake_from_wait(self, waiter: TopazThread,
                        signaller: Optional[TopazThread] = None,
                        condition: Optional[Condition] = None) -> None:
        """Mesa semantics: a signalled waiter re-acquires its mutex."""
        mutex: Mutex = getattr(waiter, "wait_mutex")
        waiter.wait_mutex = None
        if mutex.held:
            mutex.waiters.append(waiter)
            waiter.blocked_on = f"lock:{mutex.name}"
        else:
            mutex.acquire_by(waiter)
            cause = f"signal:{condition.name}" if condition else "signal"
            self._make_ready(waiter, cause=cause, waker=signaller)

    def _block(self, cpu_id: int, thread: TopazThread, why: str) -> None:
        thread.state = ThreadState.BLOCKED
        thread.blocked_on = why
        self.stats.incr("blocks")
        self._note_offcpu(cpu_id, thread, why)
        self._current[cpu_id] = None

    def _finish(self, cpu_id: int, thread: TopazThread, result: Any) -> None:
        thread.state = ThreadState.DONE
        thread.result = result
        self.stats.incr("thread_exits")
        self._note_offcpu(cpu_id, thread, "exit")
        self._current[cpu_id] = None
        while thread.joiners:
            joiner = thread.joiners.popleft()
            joiner.inbox = result
            self._make_ready(joiner, cause=f"join:{thread.name}",
                             waker=thread)

    def _make_ready(self, thread: TopazThread,
                    cause: Optional[str] = None,
                    waker: Optional[TopazThread] = None) -> None:
        if cause is not None and self.probe.active:
            ctx = thread.ctx
            waker_ctx = waker.ctx if waker is not None else None
            self.probe.instant("causal.wake", "sched",
                               thread=thread.name, tid=thread.tid,
                               trace=ctx.trace_id if ctx else 0,
                               span=ctx.span_id if ctx else 0,
                               waker_span=(waker_ctx.span_id
                                           if waker_ctx else 0),
                               cause=cause)
        self.scheduler.enqueue(thread)
        self.stats.incr("wakeups")
        self._kick_idle_cpu(preferred=thread.last_cpu)

    def _ipi_received(self, sender: int) -> None:
        self.stats.incr("ipis_received")

    def _context_for_initiator(self, initiator: int) -> Optional[TraceContext]:
        """The trace context of the thread running on ``initiator``.

        Cache initiator ids equal CPU ids; DMA and other non-CPU
        initiators fall outside the range and carry no context.
        """
        if 0 <= initiator < len(self._cpu_ctx):
            return self._cpu_ctx[initiator]
        return None

    def offline_cpu(self, cpu_id: int):
        """Fail a CPU board under Topaz; its thread survives.

        The machine layer halts the board, flushes its cache and
        detaches it from the bus; this layer re-queues whatever thread
        was running there so a survivor picks it up — the scheduler-
        level half of the paper's keeps-running story.  Returns the
        machine's offline Process (join it to wait for the flush).
        """
        proc = self.machine.offline_cpu(cpu_id, absorb=False)
        self._idle_events[cpu_id] = None  # a dead board never wakes
        self._switch_queue[cpu_id].clear()
        thread = self._current[cpu_id]
        self._current[cpu_id] = None
        if thread is not None:
            self._note_offcpu(cpu_id, thread, "cpu-offline")
            self.stats.incr("offline_requeues")
            self.scheduler.enqueue(thread)
            self._kick_idle_cpu(preferred=None)
        return proc

    def _kick_idle_cpu(self, preferred: Optional[int]) -> None:
        order = list(range(len(self._idle_events)))
        if preferred is not None and preferred < len(order):
            order.remove(preferred)
            order.insert(0, preferred)
        for cpu_id in order:
            event = self._idle_events[cpu_id]
            if event is not None and not event.fired:
                self._idle_events[cpu_id] = None
                self.machine.mbus.send_interrupt(cpu_id, sender=-1)
                event.succeed()
                return

    def _op_bundle(self, thread: TopazThread, refs: List[MemRef],
                   write_values: Tuple[int, ...] = ()) -> InstructionBundle:
        """One instruction carrying explicit data refs (plus its fetch)."""
        all_refs = [MemRef(thread.footprint._code_word(),
                           AccessKind.INSTRUCTION_READ)] + refs
        return InstructionBundle(refs=tuple(all_refs),
                                 write_values=write_values)

    def _coherent_value(self, address: int) -> int:
        """The architecturally current value of a word (see ops.Read)."""
        for cache in self.machine.caches:
            value = cache.peek(address)
            if value is not None:
                return value
        return self.machine.memory.peek(address)

    # -- running -----------------------------------------------------------------------

    def run(self, warmup_cycles: int = 100_000, measure_cycles: int = 400_000):
        """Warm up, measure, return machine metrics (see FireflyMachine)."""
        return self.machine.run(warmup_cycles, measure_cycles)

    def run_until_quiescent(self, max_cycles: int = 50_000_000,
                            slice_cycles: int = 50_000) -> int:
        """Run until every thread is DONE; return the finish time.

        Raises :class:`DeadlockError` as soon as a slice ends with
        every live thread blocked on a lock, condition or join (nothing
        left that could wake them), and :class:`SimulationError` if the
        horizon passes first (livelock, or simply too small a budget).
        """
        self.machine.start()
        deadline = self.sim.now + max_cycles
        while self.sim.now < deadline:
            if all(t.done for t in self.threads):
                return self.sim.now
            if self._thread_deadlock():
                blocked = sorted((t.name, t.blocked_on or "?")
                                 for t in self.threads if not t.done)
                raise DeadlockError(blocked, now=self.sim.now,
                                    edges=self.wait_edges())
            self.sim.run_until(min(self.sim.now + slice_cycles, deadline))
        stuck = [f"{t.name}({t.blocked_on})" for t in self.threads
                 if not t.done]
        raise SimulationError(
            f"threads still live at horizon: {', '.join(stuck) or 'none?'}")

    def _thread_deadlock(self) -> bool:
        """True when no live thread can ever run again.

        Every live thread must be blocked on a lock/condition/join
        (device waits resolve externally), with nothing on a CPU, no
        ready work, and no queued kernel-mode instructions.
        """
        live = [t for t in self.threads if not t.done]
        if not live or self.scheduler.ready_count > 0:
            return False
        if any(t is not None for t in self._current):
            return False
        if any(self._switch_queue):
            return False
        for thread in live:
            why = thread.blocked_on
            if why is None or not why.startswith(("lock:", "wait:", "join:")):
                return False
        return True

    def wait_edges(self) -> List[Tuple[str, str, str]]:
        """(waiter, resource, holder) for every blocked thread.

        The holder is the mutex owner for ``lock:`` waits, the awaited
        thread for ``join:`` waits, and empty for condition waits
        (anyone could signal).  Sorted for deterministic reports.
        """
        mutex_by_name = {m.name: m for m in self.mutexes}
        edges = []
        for thread in self.threads:
            why = thread.blocked_on
            if thread.done or not why:
                continue
            holder = ""
            if why.startswith("lock:"):
                mutex = mutex_by_name.get(why[5:])
                if mutex is not None and mutex.owner is not None:
                    holder = mutex.owner.name
            elif why.startswith("join:"):
                holder = why[5:]
            edges.append((thread.name, why, holder))
        return sorted(edges)

    @property
    def total_migrations(self) -> int:
        return sum(t.migrations for t in self.threads)

    @property
    def live_threads(self) -> int:
        return sum(1 for t in self.threads if not t.done)
