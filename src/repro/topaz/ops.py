"""Operations a Topaz thread program may yield.

Thread code is a Python generator; each ``yield`` hands the kernel one
of these operations.  ``Fork`` and ``Join`` yield values back into the
generator (the forked thread handle / the joined thread's result), so
programs read naturally::

    def worker(n):
        yield Compute(50)
        return n * n

    def main():
        children = []
        for n in range(4):
            child = yield Fork(worker, n)
            children.append(child)
        total = 0
        for child in children:
            total += yield Join(child)
        return total

The modelled primitives mirror the Modula-2+ Threads module: Fork and
Join on threads, Wait/Signal/Broadcast on condition variables, and the
LOCK-statement pair Lock/Unlock on mutexes (paper §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class Compute:
    """Execute ``instructions`` ordinary instructions in the thread's
    own footprint (code loop, stack, local data)."""

    instructions: int

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ConfigurationError("instruction count must be >= 0")


@dataclass(frozen=True)
class Read:
    """Load one explicit word (e.g. a shared buffer slot).

    The read value is sent back into the generator.
    """

    address: int


@dataclass(frozen=True)
class Write:
    """Store one explicit word."""

    address: int
    value: int


@dataclass(frozen=True)
class Lock:
    """Acquire a mutex; blocks the thread if it is held.

    Modelled as the Modula-2+ LOCK statement entry: an interlocked
    test-and-set on the mutex word (real bus traffic), then a block on
    contention.
    """

    mutex: Any  # Mutex; Any avoids a circular import in type checkers


@dataclass(frozen=True)
class Unlock:
    """Release a mutex, waking the first waiter if any."""

    mutex: Any


@dataclass(frozen=True)
class Wait:
    """Atomically release ``mutex`` and block on ``condition``.

    On wake-up the kernel re-acquires the mutex before the thread
    resumes (Mesa/Modula-2+ semantics: the caller must still re-check
    its predicate, and our example programs do).
    """

    condition: Any
    mutex: Any


@dataclass(frozen=True)
class Signal:
    """Wake one waiter of a condition variable (no-op if none)."""

    condition: Any


@dataclass(frozen=True)
class Broadcast:
    """Wake every waiter of a condition variable."""

    condition: Any


class Fork:
    """Create a new thread running ``fn(*args)``.

    The new :class:`~repro.topaz.thread.TopazThread` handle is sent
    back into the forking generator.  Positional arguments after the
    function are the thread's arguments::

        child = yield Fork(worker, 10, name="w0")
    """

    __slots__ = ("fn", "args", "name")

    def __init__(self, fn: Callable, *args: Any, name: str = "") -> None:
        self.fn = fn
        self.args = args
        self.name = name


@dataclass(frozen=True)
class Join:
    """Block until the target thread finishes; yields its result."""

    thread: Any


@dataclass(frozen=True)
class YieldCpu:
    """Voluntarily reschedule (the exerciser's 'deliberately block
    and reschedule themselves')."""


@dataclass(frozen=True)
class CurrentThread:
    """Yield the running :class:`~repro.topaz.thread.TopazThread` back
    into the generator.

    Costs zero simulated time and no memory traffic — library code
    (e.g. the RPC runtime) uses it to read the caller's identity and
    trace context without changing any timing::

        me = yield CurrentThread()
    """


class DeviceCall:
    """Block this thread on a device operation (a kernel-process
    generator), e.g. a disk transfer or an Ethernet frame.

    Topaz presents synchronous interfaces to all I/O (paper §4.1: "RPC,
    together with inexpensive Threads, permits all I/O and
    communications services to have synchronous interfaces"); this op
    is that synchronous boundary.  The device generator's return value
    is sent back into the thread::

        data = yield DeviceCall(disk.read_blocks(0, 4, buffer_qbus))
    """

    __slots__ = ("gen", "label")

    def __init__(self, gen: Any, label: str = "device") -> None:
        self.gen = gen
        self.label = label
