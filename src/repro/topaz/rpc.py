"""The Topaz RPC transport model.

Paper §4.1: "Inter-address-space and inter-machine communications in
Topaz are handled by remote procedure calls", and §6 reports the
measured headline: "our RPC data transfer protocol, with multiple
outstanding calls, achieves very high performance.  The remote server
can sustain a bandwidth of 4.6 megabits per second using an average of
three concurrent threads."

The model distinguishes the two transports:

- **Inter-address-space** (same machine, via the Nub): a call is a
  context switch pair plus argument copying through a shared buffer —
  pure memory and scheduling work, no devices.
- **Inter-machine** (via the DEQNA): each call marshals, pushes its
  packets through the controller (QBus DMA + wire time + per-packet
  driver/interrupt overhead on the serialised controller path), waits
  for the remote server's turnaround and the reply, then unmarshals.
  One client thread leaves the controller idle during server
  turnaround and marshalling; additional threads fill those gaps until
  the controller path saturates — which, with the default constants,
  happens near 4.6 Mbit/s at about three threads (bench A5).

The remote machine is a fixed-turnaround responder (see
``DESIGN.md``'s substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.stats import StatSet
from repro.io.ethernet import EthernetController, RemoteEndpoint
from repro.telemetry.probe import NULL_PROBE
from repro.topaz import ops
from repro.topaz.kernel import TopazKernel


@dataclass(frozen=True)
class RpcParams:
    """Costs of one bulk-data RPC call.

    Defaults are tuned so the saturated transport delivers the paper's
    ~4.6 Mbit/s: per packet, the serialised controller path costs the
    QBus DMA of the payload, the wire time, and
    ``driver_overhead_cycles`` of driver + interrupt + IPI work.
    """

    payload_bytes: int = 1400
    packets_per_call: int = 4
    reply_bytes: int = 64
    marshal_instructions: int = 150
    unmarshal_instructions: int = 100
    server_turnaround_cycles: int = 30_000

    def __post_init__(self) -> None:
        for field in ("payload_bytes", "packets_per_call", "reply_bytes"):
            value = getattr(self, field)
            if value <= 0:
                raise ConfigurationError(
                    f"RpcParams.{field} must be positive, got {value!r}")
        for field in ("marshal_instructions", "unmarshal_instructions",
                      "server_turnaround_cycles"):
            value = getattr(self, field)
            if value < 0:
                raise ConfigurationError(
                    f"RpcParams.{field} must be >= 0, got {value!r}")

    @property
    def data_bits_per_call(self) -> int:
        return self.payload_bytes * self.packets_per_call * 8


class RpcTransport:
    """Client-side machinery bound to one kernel + Ethernet controller."""

    def __init__(self, kernel: TopazKernel, ethernet: EthernetController,
                 buffer_qbus_address: int,
                 params: Optional[RpcParams] = None,
                 remote: Optional[RemoteEndpoint] = None) -> None:
        self.kernel = kernel
        self.ethernet = ethernet
        self.buffer_qbus_address = buffer_qbus_address
        self.params = params or RpcParams()
        self.remote = remote or RemoteEndpoint(
            self.params.server_turnaround_cycles)
        self.stats = StatSet("rpc")
        #: Telemetry probe; inert unless a TelemetryHub is attached.
        self.probe = NULL_PROBE

    # -- inter-machine calls ----------------------------------------------

    def call(self, cls: str = "rpc"):
        """Topaz program fragment: one bulk-data call (use ``yield from``).

        ``cls`` labels the request class for the causal assembler's
        per-class latency percentiles (e.g. ``"bulk"`` vs ``"ping"``).
        """
        p = self.params
        call_start = self.kernel.sim.now
        # Identity read: zero simulated cost, lets the call carry its
        # caller's trace context onto every event it causes.
        caller = yield ops.CurrentThread()
        ctx = self.kernel.causal.child(caller.ctx)
        yield ops.Compute(p.marshal_instructions)
        for packet in range(p.packets_per_call):
            yield ops.DeviceCall(
                self.ethernet.transmit_from(self.buffer_qbus_address,
                                            p.payload_bytes, ctx=ctx),
                label="rpc-tx")
            # Goodput is accounted per delivered packet (matching a
            # wire-side measurement, and avoiding call-granularity
            # quantisation in short windows).
            self.stats.incr("data_bits", p.payload_bytes * 8)
        turnaround_start = self.kernel.sim.now
        yield ops.DeviceCall(self.remote.service(self.kernel.sim),
                             label="rpc-server")
        if self.probe.active:
            self.probe.complete("rpc.turnaround", "rpc", turnaround_start,
                                self.kernel.sim.now - turnaround_start,
                                trace=ctx.trace_id, span=ctx.span_id)
        yield ops.DeviceCall(
            self.ethernet.receive_into(self.buffer_qbus_address,
                                       p.reply_bytes, ctx=ctx),
            label="rpc-rx")
        yield ops.Compute(p.unmarshal_instructions)
        self.stats.incr("calls")
        if self.probe.active:
            self.probe.complete("rpc.call", "rpc", call_start,
                                self.kernel.sim.now - call_start,
                                bits=p.data_bits_per_call,
                                packets=p.packets_per_call,
                                thread=caller.name, tid=caller.tid,
                                trace=ctx.trace_id, span=ctx.span_id,
                                parent_span=ctx.parent_id, cls=cls)

    def client_program(self, calls: int):
        """A thread body performing ``calls`` back-to-back calls."""
        def body():
            for _ in range(calls):
                yield from self.call()
            return calls
        return body

    # -- inter-address-space calls -------------------------------------------

    def local_call(self, argument_words: int = 16):
        """Topaz fragment: a same-machine RPC through the Nub.

        "Most of the speed difference in simple system calls is due to
        the context switch necessary because Taos runs as a user mode
        address space" (paper §6 footnote): the dominant cost here is
        the forced reschedule pair, modelled by two yields around the
        copy work.
        """
        start = self.kernel.sim.now
        caller = yield ops.CurrentThread()
        copy_instructions = max(4, argument_words // 2)
        yield ops.Compute(copy_instructions)
        yield ops.YieldCpu()              # into the server's space
        yield ops.Compute(copy_instructions)
        yield ops.YieldCpu()              # back to the caller
        self.stats.incr("local_calls")
        if self.probe.active:
            ctx = caller.ctx
            self.probe.complete("rpc.local", "rpc", start,
                                self.kernel.sim.now - start,
                                thread=caller.name, tid=caller.tid,
                                trace=ctx.trace_id if ctx else 0,
                                span=ctx.span_id if ctx else 0)

    # -- measurement ---------------------------------------------------------------

    def goodput_bits_per_second(self, window_cycles: int) -> float:
        """Payload bits/second of completed calls over the window."""
        if window_cycles <= 0:
            return 0.0
        return self.stats["data_bits"].windowed / (window_cycles * 1e-7)

    def mark_window(self) -> None:
        self.stats.mark_all()
