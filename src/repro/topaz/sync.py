"""Synchronisation objects: mutexes and condition variables.

Each object owns one word of simulated *shared* memory, allocated from
the kernel heap.  The runtime writes real values through the caches —
1/0 for held/free mutexes, a sequence number for condition signals —
so lock ping-ponging between processors produces exactly the
conditional-write-through traffic the paper discusses, and the
coherence checker can audit the values.

With one-longword cache lines every synchronisation word is its own
line, so there is no false sharing — a genuine property of the Firefly
geometry the paper's footnote 4 trades against the higher miss rate.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topaz.thread import TopazThread


class Mutex:
    """A mutual-exclusion variable (the LOCK statement's operand)."""

    def __init__(self, address: int, name: str = "mutex") -> None:
        self.address = address
        self.name = name
        self.owner: Optional["TopazThread"] = None
        self.waiters: Deque["TopazThread"] = deque()
        self.acquisitions = 0
        self.contentions = 0

    @property
    def held(self) -> bool:
        return self.owner is not None

    def acquire_by(self, thread: "TopazThread") -> None:
        if self.owner is not None:
            raise SimulationError(
                f"{self.name} acquired by {thread.name} while held by "
                f"{self.owner.name}")
        self.owner = thread
        self.acquisitions += 1

    def release_by(self, thread: "TopazThread") -> Optional["TopazThread"]:
        """Release; return the waiter that inherits the lock, if any."""
        if self.owner is not thread:
            holder = self.owner.name if self.owner else None
            raise SimulationError(
                f"{thread.name} released {self.name} held by {holder}")
        self.owner = None
        if self.waiters:
            # Direct handoff: the woken waiter owns the mutex when it
            # runs, so it does not race a fresh acquirer.
            successor = self.waiters.popleft()
            self.owner = successor
            self.acquisitions += 1
            return successor
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"held by {self.owner.name}" if self.owner else "free"
        return f"<Mutex {self.name}@{self.address:#x} {state}>"


class Condition:
    """A condition variable with Wait/Signal/Broadcast.

    ``sequence`` counts signals; the runtime writes it to the
    condition's memory word on every Signal, so observers of the word
    see monotone progress.
    """

    def __init__(self, address: int, name: str = "cond") -> None:
        self.address = address
        self.name = name
        self.waiters: Deque["TopazThread"] = deque()
        self.sequence = 0

    def add_waiter(self, thread: "TopazThread") -> None:
        self.waiters.append(thread)

    def take_one(self) -> Optional["TopazThread"]:
        self.sequence += 1
        return self.waiters.popleft() if self.waiters else None

    def take_all(self) -> list:
        self.sequence += 1
        woken = list(self.waiters)
        self.waiters.clear()
        return woken

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Condition {self.name}@{self.address:#x} "
                f"{len(self.waiters)} waiting>")
