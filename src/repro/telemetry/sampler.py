"""Periodic time-series probes: ring buffers fed by the event kernel.

Where :mod:`repro.telemetry.probe` captures *events* (something
happened at time t), this module captures *trajectories*: every N
cycles a :class:`Sampler` callback snapshots a set of scalar gauges —
bus load, per-CPU TPI, miss rate, run-queue depth — into bounded ring
buffers.  That turns the one-shot windowed ``MachineMetrics`` numbers
into curves: a cold cache after a context switch shows up as a miss-
rate spike, a DMA burst as a bus-load step, exactly the transients the
paper's logic analyser saw between Table 2's endpoints.

Gauges are plain callables evaluated at sample time.  For rates over
the *last interval* (rather than since a mark), wrap cumulative
counters with :func:`delta_gauge`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError


class RingBuffer:
    """A bounded append-only buffer that drops its oldest entries."""

    __slots__ = ("capacity", "_items", "_start", "dropped")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: List = []
        self._start = 0
        self.dropped = 0

    def append(self, item) -> None:
        """Add one item, evicting the oldest when full."""
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        self._items[self._start] = item
        self._start = (self._start + 1) % self.capacity
        self.dropped += 1

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        n = len(self._items)
        for i in range(n):
            yield self._items[(self._start + i) % n]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RingBuffer {len(self)}/{self.capacity}>"


class Series:
    """One named time series: (time, value) pairs in a ring buffer."""

    __slots__ = ("name", "_ring")

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self._ring = RingBuffer(capacity)

    def record(self, time: int, value: float) -> None:
        """Append one sample."""
        self._ring.append((time, value))

    def samples(self) -> List[Tuple[int, float]]:
        """All retained (time, value) samples, oldest first."""
        return list(self._ring)

    def values(self) -> List[float]:
        """Just the values, oldest first."""
        return [v for _, v in self._ring]

    def times(self) -> List[int]:
        """Just the timestamps, oldest first."""
        return [t for t, _ in self._ring]

    @property
    def last(self) -> Optional[Tuple[int, float]]:
        """The most recent sample, or None."""
        items = self.samples()
        return items[-1] if items else None

    @property
    def dropped(self) -> int:
        """Samples evicted by the ring bound."""
        return self._ring.dropped

    def __len__(self) -> int:
        return len(self._ring)


Gauge = Callable[[], float]


class Sampler:
    """Snapshots registered gauges every ``interval`` kernel cycles.

    The sampler drives itself with ``sim.call_at`` callbacks; it only
    reschedules while running, so a stopped sampler leaves the event
    heap drainable (``sim.run()`` still terminates).
    """

    def __init__(self, sim, interval: int, capacity: int = 4096) -> None:
        if interval < 1:
            raise ConfigurationError(
                f"sample interval must be >= 1 cycle, got {interval}")
        self.sim = sim
        self.interval = interval
        self.capacity = capacity
        self._gauges: Dict[str, Gauge] = {}
        self._series: Dict[str, Series] = {}
        self._running = False
        self.ticks = 0

    # -- registration --------------------------------------------------

    def add(self, name: str, gauge: Gauge) -> Series:
        """Register a gauge; returns its (initially empty) series."""
        if name in self._gauges:
            raise ConfigurationError(f"duplicate sampler series {name!r}")
        self._gauges[name] = gauge
        series = Series(name, self.capacity)
        self._series[name] = series
        return series

    def series(self, name: str) -> Series:
        """The series recorded for ``name``."""
        return self._series[name]

    def all_series(self) -> List[Series]:
        """Every registered series, in registration order."""
        return list(self._series.values())

    @property
    def dropped(self) -> int:
        """Total samples evicted across all series by the ring bounds.

        Ring buffers overwrite silently on wrap; this counter makes the
        loss visible so ``firefly-sim trace`` and the dashboard can say
        how much history the retained curves are missing.
        """
        return sum(series.dropped for series in self._series.values())

    # -- sampling ------------------------------------------------------

    def start(self) -> None:
        """Begin periodic sampling (idempotent).

        Every gauge is evaluated (and discarded) once at start time, so
        a :func:`delta_gauge` is primed *now* rather than at the first
        tick — its first recorded sample then covers exactly
        ``[start, start+interval)`` instead of reading a spurious 0.0.
        """
        if self._running:
            return
        self._running = True
        for gauge in self._gauges.values():
            gauge()
        self.sim.call_at(self.interval, self._tick)

    def stop(self) -> None:
        """Stop sampling; pending callbacks become no-ops."""
        self._running = False

    def sample_now(self) -> None:
        """Record one sample of every gauge at the current time."""
        now = self.sim.now
        for name, gauge in self._gauges.items():
            self._series[name].record(now, float(gauge()))

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self.sample_now()
        self.sim.call_at(self.interval, self._tick)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "running" if self._running else "stopped"
        return (f"<Sampler {state} every {self.interval} cycles, "
                f"{len(self._series)} series>")


def delta_gauge(numerator: Callable[[], float],
                denominator: Callable[[], float]) -> Gauge:
    """A gauge computing Δnumerator/Δdenominator since its last reading.

    Both callables must return cumulative totals.  The first reading
    primes the state and reports 0.0; a zero denominator delta (no
    elapsed quantity) also reports 0.0.

    >>> busy = [0]
    >>> clock = [0]
    >>> g = delta_gauge(lambda: busy[0], lambda: clock[0])
    >>> g()
    0.0
    >>> busy[0], clock[0] = 40, 100
    >>> g()
    0.4
    """
    state: List[Optional[Tuple[float, float]]] = [None]

    def gauge() -> float:
        num, den = numerator(), denominator()
        previous, state[0] = state[0], (num, den)
        if previous is None:
            return 0.0
        dden = den - previous[1]
        if dden <= 0:
            return 0.0
        return (num - previous[0]) / dden

    return gauge
