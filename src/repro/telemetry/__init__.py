"""Unified telemetry: event probes, time-series samplers, exporters.

The observability layer the paper's authors had in hardware (event
counters and a logic analyser) rebuilt for the simulator:

- :mod:`repro.telemetry.probe` — typed, timestamped events emitted by
  the bus, caches, scheduler and devices, near-free when disabled;
- :mod:`repro.telemetry.sampler` — periodic ring-buffered snapshots of
  bus load, TPI, miss rate and run-queue depth;
- :mod:`repro.telemetry.export` — ``chrome://tracing`` JSON and JSONL;
- :mod:`repro.telemetry.instrument` — one-call attachment to a built
  :class:`~repro.system.machine.FireflyMachine` or Topaz kernel.

See ``docs/TELEMETRY.md`` for the event taxonomy and format notes.
"""

from repro.telemetry.probe import (
    COMPLETE,
    INSTANT,
    NULL_PROBE,
    Probe,
    TelemetryEvent,
    TelemetryHub,
)
from repro.telemetry.sampler import RingBuffer, Sampler, Series, delta_gauge
from repro.telemetry.export import (
    chrome_trace,
    dump_jsonl,
    jsonl_records,
    write_chrome_trace,
    write_export,
    write_jsonl,
)
from repro.telemetry.instrument import (
    DEFAULT_SAMPLE_INTERVAL,
    attach_kernel,
    attach_machine,
    attach_rpc,
    attach_serving,
    kernel_sampler,
    machine_sampler,
    telemetry_for_kernel,
    telemetry_for_machine,
)

__all__ = [
    "COMPLETE",
    "INSTANT",
    "NULL_PROBE",
    "Probe",
    "TelemetryEvent",
    "TelemetryHub",
    "RingBuffer",
    "Sampler",
    "Series",
    "delta_gauge",
    "chrome_trace",
    "dump_jsonl",
    "jsonl_records",
    "write_chrome_trace",
    "write_export",
    "write_jsonl",
    "DEFAULT_SAMPLE_INTERVAL",
    "attach_kernel",
    "attach_machine",
    "attach_rpc",
    "attach_serving",
    "kernel_sampler",
    "machine_sampler",
    "telemetry_for_kernel",
    "telemetry_for_machine",
]
