"""Structured event telemetry: probes, the hub, and subscribers.

The paper's evaluation was read off hardware event counters and a
logic analyser; the simulator equivalent is a telemetry bus.  Model
components own a :class:`Probe` (by default the inert
:data:`NULL_PROBE`) and emit typed, timestamped events through it —
``bus.op``, ``cache.transition``, ``sched.migrate``, ``dma.burst``,
``rpc.turnaround`` — which a :class:`TelemetryHub` collects and fans
out to subscribers.

The design constraint is the *disabled* path: instrumentation sits on
hot simulator paths (every bus transaction, every cache miss), so when
nothing is listening an emit site must cost one attribute load and one
branch::

    if self.probe.active:
        self.probe.complete("bus.op", "bus", start, cycles, op=op.value)

``NULL_PROBE.active`` is permanently ``False`` and a hub's probes go
inactive when the hub is disabled, so no event object is ever
allocated unless someone asked for telemetry.

Event taxonomy and exporters are documented in ``docs/TELEMETRY.md``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

INSTANT = "i"
"""A point event (Chrome trace phase ``i``)."""

COMPLETE = "X"
"""A duration event with an explicit start and length (phase ``X``)."""


class TelemetryEvent:
    """One emitted event: a name, a timestamp, a track, and arguments.

    ``track`` names the timeline row the event belongs to (``bus``,
    ``cpu3``, ``cache0``, ``qbus``, ``rpc`` …); exporters map tracks to
    Chrome-trace threads.  ``duration`` is zero for instants.
    """

    __slots__ = ("name", "time", "track", "phase", "duration", "args")

    def __init__(self, name: str, time: int, track: str,
                 phase: str = INSTANT, duration: int = 0,
                 args: Tuple[Tuple[str, Any], ...] = ()) -> None:
        self.name = name
        self.time = time
        self.track = track
        self.phase = phase
        self.duration = duration
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict view (the JSONL exporter's record body)."""
        return {"name": self.name, "time": self.time, "track": self.track,
                "phase": self.phase, "duration": self.duration,
                "args": dict(self.args)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = " ".join(f"{k}={v}" for k, v in self.args)
        return (f"<{self.name}@{self.time} {self.track} "
                f"{self.phase} {inner}>".replace(" >", ">"))


class _NullProbe:
    """The probe every component starts with: inert, allocation-free."""

    __slots__ = ()
    active = False

    def instant(self, name: str, track: str, **args) -> None:
        """Discard (the guarding ``if probe.active`` makes this dead)."""

    def instant_at(self, name: str, track: str, time: int, **args) -> None:
        """Discard."""

    def complete(self, name: str, track: str, start: int, duration: int,
                 **args) -> None:
        """Discard."""


NULL_PROBE = _NullProbe()
"""Module-level inert probe; components default their ``probe`` to it."""


class Probe:
    """A component's handle for emitting events into a hub.

    ``active`` mirrors the hub's enabled flag; emit sites must guard on
    it so the disabled path allocates nothing.
    """

    __slots__ = ("category", "hub", "active", "track_prefix")

    def __init__(self, category: str, hub: "TelemetryHub",
                 track_prefix: str = "") -> None:
        self.category = category
        self.hub = hub
        self.active = hub.probe_active(category)
        self.track_prefix = track_prefix

    def instant(self, name: str, track: str, **args) -> None:
        """Emit a point event stamped at the hub's current time."""
        hub = self.hub
        if self.track_prefix:
            track = self.track_prefix + track
        hub.record(TelemetryEvent(name, hub.now(), track, INSTANT, 0,
                                  tuple(args.items())))

    def instant_at(self, name: str, track: str, time: int, **args) -> None:
        """Emit a point event at an explicit (earlier) timestamp."""
        if self.track_prefix:
            track = self.track_prefix + track
        self.hub.record(TelemetryEvent(name, time, track, INSTANT, 0,
                                       tuple(args.items())))

    def complete(self, name: str, track: str, start: int, duration: int,
                 **args) -> None:
        """Emit a duration event covering ``[start, start+duration)``."""
        if self.track_prefix:
            track = self.track_prefix + track
        self.hub.record(TelemetryEvent(name, start, track, COMPLETE,
                                       duration, tuple(args.items())))


Subscriber = Callable[[TelemetryEvent], None]


class TelemetryHub:
    """The central registry: hands out probes, buffers and fans out events.

    Parameters
    ----------
    sim:
        The event kernel whose clock stamps events (anything with a
        ``now`` attribute works).
    max_events:
        Buffer bound; events beyond it are counted in ``dropped``
        rather than stored, so a runaway run cannot exhaust memory.
    """

    def __init__(self, sim, max_events: int = 500_000) -> None:
        self.sim = sim
        self.max_events = max_events
        self.events: List[TelemetryEvent] = []
        self.emitted = 0
        self.dropped = 0
        self._enabled = True
        self._categories: Optional[frozenset] = None
        self._probes: Dict[Tuple[str, str], Probe] = {}
        self._subscribers: List[Tuple[str, Subscriber]] = []

    # -- registry ------------------------------------------------------

    def probe(self, category: str, track_prefix: str = "") -> Probe:
        """Return (creating if needed) the probe for ``category``.

        ``track_prefix`` is prepended to every track the probe emits on
        (e.g. ``"m1."`` turns ``cpu0`` into ``m1.cpu0``), letting one hub
        collect several machines onto disjoint timeline rows.
        """
        key = (category, track_prefix)
        probe = self._probes.get(key)
        if probe is None:
            probe = Probe(category, self, track_prefix)
            self._probes[key] = probe
        return probe

    def probe_active(self, category: str) -> bool:
        """Whether a probe of ``category`` should currently be live."""
        if not self._enabled:
            return False
        return self._categories is None or category in self._categories

    @property
    def enabled(self) -> bool:
        """Whether probes handed out by this hub are live."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        self._refresh_probes()

    def enable_only(self, categories) -> None:
        """Restrict live probes to ``categories`` (None lifts the filter).

        The filter composes with ``enabled`` and applies to probes handed
        out later too — the flight recorder uses it to keep hot-path
        categories (``bus``, ``cache``) dark while recording scheduler
        and RPC events.
        """
        self._categories = None if categories is None else frozenset(categories)
        self._refresh_probes()

    def _refresh_probes(self) -> None:
        for (category, _prefix), probe in self._probes.items():
            probe.active = self.probe_active(category)

    # -- event flow ----------------------------------------------------

    def now(self) -> int:
        """The current simulation time."""
        return self.sim.now

    def record(self, event: TelemetryEvent) -> None:
        """Buffer one event and deliver it to matching subscribers."""
        self.emitted += 1
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.dropped += 1
        for prefix, fn in self._subscribers:
            if event.name.startswith(prefix):
                fn(event)

    def subscribe(self, fn: Subscriber, prefix: str = "") -> Subscriber:
        """Call ``fn(event)`` for every event whose name has ``prefix``."""
        self._subscribers.append((prefix, fn))
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        """Remove every subscription of ``fn`` (no-op if absent)."""
        self._subscribers = [(p, f) for p, f in self._subscribers
                             if f is not fn]

    # -- queries -------------------------------------------------------

    def events_named(self, prefix: str) -> List[TelemetryEvent]:
        """All buffered events whose name starts with ``prefix``."""
        return [e for e in self.events if e.name.startswith(prefix)]

    def tracks(self) -> List[str]:
        """Track names in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.track, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "enabled" if self._enabled else "disabled"
        return (f"<TelemetryHub {state} events={len(self.events)} "
                f"dropped={self.dropped}>")
