"""Wiring telemetry into built machines and kernels.

Components carry an inert probe by default; these helpers replace it
with live probes from one hub, and build the standard sampler set
(bus load, per-CPU TPI, miss rate, run-queue depth).  Attachment is
*post-construction*, so no component constructor grows a telemetry
parameter and an uninstrumented machine pays only the dead
``probe.active`` branches.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.telemetry.probe import TelemetryHub
from repro.telemetry.sampler import Sampler, delta_gauge

DEFAULT_SAMPLE_INTERVAL = 2_000
"""Cycles between time-series samples (200 µs of simulated time)."""


def attach_machine(hub: TelemetryHub, machine,
                   track_prefix: str = "") -> TelemetryHub:
    """Wire live probes into a machine's bus, caches, and QBus.

    ``track_prefix`` (e.g. ``"m1."``) keeps several machines on one
    hub apart: exporters group dotted tracks into per-machine
    processes.
    """
    machine.probe = hub.probe("machine", track_prefix)
    machine.mbus.probe = hub.probe("bus", track_prefix)
    for cache in machine.caches:
        cache.probe = hub.probe("cache", track_prefix)
    if machine.qbus is not None:
        machine.qbus.probe = hub.probe("dma", track_prefix)
    return hub


def attach_kernel(hub: TelemetryHub, kernel,
                  track_prefix: str = "") -> TelemetryHub:
    """Wire probes into a Topaz kernel and its underlying machine."""
    attach_machine(hub, kernel.machine, track_prefix)
    probe = hub.probe("sched", track_prefix)
    kernel.probe = probe
    kernel.scheduler.probe = probe
    return hub


def attach_rpc(hub: TelemetryHub, transport,
               track_prefix: str = "") -> TelemetryHub:
    """Wire a probe into an RPC transport (call + turnaround spans)."""
    transport.probe = hub.probe("rpc", track_prefix)
    return hub


def attach_serving(hub: TelemetryHub, resilient,
                   track_prefix: str = "") -> TelemetryHub:
    """Wire a probe into a resilient transport (policy decisions).

    The wrapper emits the outer ``rpc.call`` request span plus the
    ``serve.*`` instants (retry, shed, hedge, breaker, late); the
    wrapped transports stay unprobed so each logical request assembles
    as exactly one record.
    """
    resilient.probe = hub.probe("serving", track_prefix)
    return hub


def machine_sampler(machine, interval: int = DEFAULT_SAMPLE_INTERVAL,
                    capacity: int = 4096) -> Sampler:
    """The standard machine trajectory: bus load, TPI, miss rate.

    ``bus.load`` and the per-CPU series are *interval* rates (deltas
    over the last sample period), so the trajectory shows transients —
    unlike ``MachineMetrics``, which averages the whole window.
    """
    sampler = Sampler(machine.sim, interval, capacity)
    mbus = machine.mbus
    sampler.add("bus.load", delta_gauge(
        lambda: mbus.utilization.busy_total, lambda: machine.sim.now))
    sampler.add("bus.queue_depth", lambda: mbus.queue_depth)
    sampler.add("bus.ops", delta_gauge(
        lambda: mbus.stats["ops"].total, lambda: 1 + sampler.ticks))
    if machine.qbus is not None:
        qbus = machine.qbus
        sampler.add("qbus.load", delta_gauge(
            lambda: qbus.utilization.busy_total, lambda: machine.sim.now))
    for cpu, cache in zip(machine.cpus, machine.caches):
        _add_cpu_series(sampler, machine, cpu, cache)
    return sampler


def _add_cpu_series(sampler: Sampler, machine, cpu, cache) -> None:
    cpu_id = cpu.cpu_id
    tick_cycles = cpu.timing.tick_cycles
    stats = cpu.stats

    def busy_ticks() -> float:
        return ((machine.sim.now - stats["idle_cycles"].total)
                / tick_cycles)

    sampler.add(f"cpu{cpu_id}.tpi", delta_gauge(
        busy_ticks, lambda: stats["instructions"].total))

    cache_stats = cache.stats

    def misses() -> float:
        return (cache_stats["ifetch.miss"].total
                + cache_stats["dread.miss"].total
                + cache_stats["dwrite.miss"].total)

    def references() -> float:
        return misses() + (cache_stats["ifetch.hit"].total
                           + cache_stats["dread.hit"].total
                           + cache_stats["dwrite.hit"].total)

    sampler.add(f"cpu{cpu_id}.miss_rate", delta_gauge(misses, references))


def kernel_sampler(kernel, interval: int = DEFAULT_SAMPLE_INTERVAL,
                   capacity: int = 4096) -> Sampler:
    """Machine sampler plus the scheduler's run-queue depth."""
    sampler = machine_sampler(kernel.machine, interval, capacity)
    sampler.add("sched.ready", lambda: kernel.scheduler.ready_count)
    return sampler


def telemetry_for_machine(machine,
                          interval: int = DEFAULT_SAMPLE_INTERVAL,
                          max_events: int = 500_000
                          ) -> Tuple[TelemetryHub, Sampler]:
    """One-call setup: hub attached + standard sampler (not started)."""
    hub = TelemetryHub(machine.sim, max_events=max_events)
    attach_machine(hub, machine)
    return hub, machine_sampler(machine, interval)


def telemetry_for_kernel(kernel,
                         interval: int = DEFAULT_SAMPLE_INTERVAL,
                         max_events: int = 500_000
                         ) -> Tuple[TelemetryHub, Sampler]:
    """One-call setup for a Topaz kernel (scheduler events included)."""
    hub = TelemetryHub(kernel.sim, max_events=max_events)
    attach_kernel(hub, kernel)
    return hub, kernel_sampler(kernel, interval)
