"""Telemetry exporters: Chrome-trace JSON and JSONL event streams.

The Chrome format is the ``chrome://tracing`` / Perfetto JSON object
format: a ``traceEvents`` array of phase-tagged records.  Each
telemetry *track* (``bus``, ``cpu0`` …, ``cache0`` …, ``qbus``,
``rpc``) becomes one named thread under a single ``firefly-sim``
process, so the UI draws one timeline row per CPU/bus/device; sampler
series become counter (``C``) events, which the UI draws as stacked
area charts.

Timestamps are microseconds in the Chrome format (one MBus cycle is
0.1 µs) and raw cycles in the JSONL format.

The JSONL format is one JSON object per line: a ``meta`` header, then
``event`` and ``sample`` records in time order — trivially greppable
and streamable into pandas/jq.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import IO, Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.common.types import SECONDS_PER_CYCLE
from repro.telemetry.probe import COMPLETE, INSTANT, TelemetryHub
from repro.telemetry.sampler import Sampler, Series

MICROSECONDS_PER_CYCLE = SECONDS_PER_CYCLE * 1e6
"""Chrome-trace ``ts`` units per simulator cycle (0.1 µs per cycle)."""

_PID = 0

_CAUSAL_SOURCES = ("causal.fork", "causal.wake")
"""Instants that start a flow arrow to the woken span's next dispatch."""


def _flatten_series(samplers: Sequence[Union[Sampler, Series]]) -> List[Series]:
    series: List[Series] = []
    for item in samplers:
        if isinstance(item, Sampler):
            series.extend(item.all_series())
        else:
            series.append(item)
    return series


def _assign_track_ids(tracks: Iterable[str],
                      process_name: str) -> Tuple[Dict[str, Tuple[int, int]],
                                                  List[Dict[str, Any]]]:
    """Map tracks to (pid, tid) pairs plus the metadata events.

    Dotted tracks (``m1.cpu0``) group under a per-prefix process so a
    multi-machine hub renders one Chrome process per machine; plain
    tracks live in the base process (pid 0).
    """
    pids: Dict[str, int] = {"": _PID}
    next_tid: Dict[int, int] = {}
    ids: Dict[str, Tuple[int, int]] = {}
    meta: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": _PID,
        "args": {"name": process_name},
    }]
    for track in tracks:
        prefix, _, local = track.rpartition(".")
        if prefix not in pids:
            pid = pids[prefix] = len(pids)
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "args": {"name": f"{process_name}:{prefix}"}})
        pid = pids[prefix]
        tid = next_tid.get(pid, 0)
        next_tid[pid] = tid + 1
        ids[track] = (pid, tid)
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tid, "args": {"name": local or track}})
        meta.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                     "tid": tid, "args": {"sort_index": tid}})
    return ids, meta


def _flow_events(hub: TelemetryHub,
                 ids: Dict[str, Tuple[int, int]]) -> List[Dict[str, Any]]:
    """Chrome flow arrows (``ph: s``/``f``) for the causal links.

    Each ``causal.fork``/``causal.wake`` instant starts an arrow that
    ends at the woken span's first ``sched.run`` dispatch at or after
    the wake; arrows with no subsequent dispatch are dropped rather
    than left dangling.
    """
    dispatches: Dict[int, List[Tuple[int, Any]]] = {}
    for event in hub.events:
        if event.name == "sched.run":
            span = dict(event.args).get("span")
            if span:
                dispatches.setdefault(span, []).append((event.time, event))

    flows: List[Dict[str, Any]] = []
    flow_id = 0
    for event in hub.events:
        if event.name not in _CAUSAL_SOURCES:
            continue
        span = dict(event.args).get("span")
        runs = dispatches.get(span)
        if not runs:
            continue
        i = bisect_left(runs, (event.time,))
        if i == len(runs):
            continue
        run_time, run = runs[i]
        flow_id += 1
        src_pid, src_tid = ids[event.track]
        dst_pid, dst_tid = ids[run.track]
        common = {"name": event.name, "cat": "causal", "id": flow_id}
        flows.append({**common, "ph": "s",
                      "ts": event.time * MICROSECONDS_PER_CYCLE,
                      "pid": src_pid, "tid": src_tid})
        flows.append({**common, "ph": "f", "bp": "e",
                      "ts": run_time * MICROSECONDS_PER_CYCLE,
                      "pid": dst_pid, "tid": dst_tid})
    return flows


def chrome_trace(hub: TelemetryHub,
                 samplers: Sequence[Union[Sampler, Series]] = (),
                 process_name: str = "firefly-sim") -> Dict[str, Any]:
    """Build a ``chrome://tracing`` JSON object from a hub + samplers.

    Tracks are assigned (pid, tid) pairs in first-appearance order —
    dotted tracks group into per-prefix processes — and named via
    metadata events; ``X`` (complete) events carry their duration,
    instants render as marks, causal fork/wake links become flow
    arrows, and sampler series become counters.
    """
    series = _flatten_series(samplers)
    ids, events = _assign_track_ids(hub.tracks(), process_name)

    for event in hub.events:
        pid, tid = ids[event.track]
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.name.split(".", 1)[0],
            "ph": event.phase,
            "ts": event.time * MICROSECONDS_PER_CYCLE,
            "pid": pid,
            "tid": tid,
            "args": dict(event.args),
        }
        if event.phase == COMPLETE:
            record["dur"] = event.duration * MICROSECONDS_PER_CYCLE
        elif event.phase == INSTANT:
            record["s"] = "t"  # thread-scoped instant
        events.append(record)

    events.extend(_flow_events(hub, ids))

    for item in series:
        for time, value in item.samples():
            events.append({
                "name": item.name, "cat": "sample", "ph": "C",
                "ts": time * MICROSECONDS_PER_CYCLE, "pid": _PID,
                "args": {"value": value},
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "emitted": hub.emitted,
            "dropped": hub.dropped,
            "samples_dropped": sum(s.dropped for s in series),
            "cycle_ns": SECONDS_PER_CYCLE * 1e9,
        },
    }


def write_chrome_trace(path, hub: TelemetryHub,
                       samplers: Sequence[Union[Sampler, Series]] = ()) -> None:
    """Serialise :func:`chrome_trace` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(hub, samplers), fh)


def jsonl_records(hub: TelemetryHub,
                  samplers: Sequence[Union[Sampler, Series]] = ()
                  ) -> Iterable[Dict[str, Any]]:
    """Yield the JSONL records: meta header, events, then samples."""
    series = _flatten_series(samplers)
    yield {"type": "meta", "format": "firefly-telemetry", "version": 1,
           "cycle_ns": SECONDS_PER_CYCLE * 1e9, "emitted": hub.emitted,
           "dropped": hub.dropped,
           "samples_dropped": sum(s.dropped for s in series)}
    for event in hub.events:
        record = event.to_dict()
        record["type"] = "event"
        yield record
    for item in series:
        for time, value in item.samples():
            yield {"type": "sample", "series": item.name,
                   "time": time, "value": value}


def write_jsonl(path, hub: TelemetryHub,
                samplers: Sequence[Union[Sampler, Series]] = ()) -> None:
    """Write the hub's events (and sampler series) as JSON Lines."""
    with open(path, "w", encoding="utf-8") as fh:
        dump_jsonl(fh, hub, samplers)


def dump_jsonl(fh: IO[str], hub: TelemetryHub,
               samplers: Sequence[Union[Sampler, Series]] = ()) -> None:
    """Stream JSONL records to an open text file."""
    for record in jsonl_records(hub, samplers):
        fh.write(json.dumps(record))
        fh.write("\n")


def write_export(path: str, hub: TelemetryHub,
                 samplers: Sequence[Union[Sampler, Series]] = (),
                 fmt: Optional[str] = None) -> str:
    """Write ``path`` in ``fmt`` (``chrome``/``jsonl``; None = by suffix).

    Returns the format actually used.
    """
    if fmt is None:
        fmt = "jsonl" if str(path).endswith(".jsonl") else "chrome"
    if fmt == "chrome":
        write_chrome_trace(path, hub, samplers)
    elif fmt == "jsonl":
        write_jsonl(path, hub, samplers)
    else:
        raise ValueError(f"unknown telemetry export format {fmt!r}")
    return fmt
