"""Telemetry exporters: Chrome-trace JSON and JSONL event streams.

The Chrome format is the ``chrome://tracing`` / Perfetto JSON object
format: a ``traceEvents`` array of phase-tagged records.  Each
telemetry *track* (``bus``, ``cpu0`` …, ``cache0`` …, ``qbus``,
``rpc``) becomes one named thread under a single ``firefly-sim``
process, so the UI draws one timeline row per CPU/bus/device; sampler
series become counter (``C``) events, which the UI draws as stacked
area charts.

Timestamps are microseconds in the Chrome format (one MBus cycle is
0.1 µs) and raw cycles in the JSONL format.

The JSONL format is one JSON object per line: a ``meta`` header, then
``event`` and ``sample`` records in time order — trivially greppable
and streamable into pandas/jq.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.common.types import SECONDS_PER_CYCLE
from repro.telemetry.probe import COMPLETE, INSTANT, TelemetryHub
from repro.telemetry.sampler import Sampler, Series

MICROSECONDS_PER_CYCLE = SECONDS_PER_CYCLE * 1e6
"""Chrome-trace ``ts`` units per simulator cycle (0.1 µs per cycle)."""

_PID = 0


def _flatten_series(samplers: Sequence[Union[Sampler, Series]]) -> List[Series]:
    series: List[Series] = []
    for item in samplers:
        if isinstance(item, Sampler):
            series.extend(item.all_series())
        else:
            series.append(item)
    return series


def chrome_trace(hub: TelemetryHub,
                 samplers: Sequence[Union[Sampler, Series]] = (),
                 process_name: str = "firefly-sim") -> Dict[str, Any]:
    """Build a ``chrome://tracing`` JSON object from a hub + samplers.

    Tracks are assigned thread ids in first-appearance order and named
    via metadata events; ``X`` (complete) events carry their duration,
    instants render as arrows, and sampler series become counters.
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": _PID,
        "args": {"name": process_name},
    }]
    tids: Dict[str, int] = {}
    for track in hub.tracks():
        tid = tids[track] = len(tids)
        events.append({"name": "thread_name", "ph": "M", "pid": _PID,
                       "tid": tid, "args": {"name": track}})
        events.append({"name": "thread_sort_index", "ph": "M", "pid": _PID,
                       "tid": tid, "args": {"sort_index": tid}})

    for event in hub.events:
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.name.split(".", 1)[0],
            "ph": event.phase,
            "ts": event.time * MICROSECONDS_PER_CYCLE,
            "pid": _PID,
            "tid": tids[event.track],
            "args": dict(event.args),
        }
        if event.phase == COMPLETE:
            record["dur"] = event.duration * MICROSECONDS_PER_CYCLE
        elif event.phase == INSTANT:
            record["s"] = "t"  # thread-scoped instant
        events.append(record)

    for series in _flatten_series(samplers):
        for time, value in series.samples():
            events.append({
                "name": series.name, "cat": "sample", "ph": "C",
                "ts": time * MICROSECONDS_PER_CYCLE, "pid": _PID,
                "args": {"value": value},
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "emitted": hub.emitted,
            "dropped": hub.dropped,
            "cycle_ns": SECONDS_PER_CYCLE * 1e9,
        },
    }


def write_chrome_trace(path, hub: TelemetryHub,
                       samplers: Sequence[Union[Sampler, Series]] = ()) -> None:
    """Serialise :func:`chrome_trace` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(hub, samplers), fh)


def jsonl_records(hub: TelemetryHub,
                  samplers: Sequence[Union[Sampler, Series]] = ()
                  ) -> Iterable[Dict[str, Any]]:
    """Yield the JSONL records: meta header, events, then samples."""
    yield {"type": "meta", "format": "firefly-telemetry", "version": 1,
           "cycle_ns": SECONDS_PER_CYCLE * 1e9, "emitted": hub.emitted,
           "dropped": hub.dropped}
    for event in hub.events:
        record = event.to_dict()
        record["type"] = "event"
        yield record
    for series in _flatten_series(samplers):
        for time, value in series.samples():
            yield {"type": "sample", "series": series.name,
                   "time": time, "value": value}


def write_jsonl(path, hub: TelemetryHub,
                samplers: Sequence[Union[Sampler, Series]] = ()) -> None:
    """Write the hub's events (and sampler series) as JSON Lines."""
    with open(path, "w", encoding="utf-8") as fh:
        dump_jsonl(fh, hub, samplers)


def dump_jsonl(fh: IO[str], hub: TelemetryHub,
               samplers: Sequence[Union[Sampler, Series]] = ()) -> None:
    """Stream JSONL records to an open text file."""
    for record in jsonl_records(hub, samplers):
        fh.write(json.dumps(record))
        fh.write("\n")


def write_export(path: str, hub: TelemetryHub,
                 samplers: Sequence[Union[Sampler, Series]] = (),
                 fmt: Optional[str] = None) -> str:
    """Write ``path`` in ``fmt`` (``chrome``/``jsonl``; None = by suffix).

    Returns the format actually used.
    """
    if fmt is None:
        fmt = "jsonl" if str(path).endswith(".jsonl") else "chrome"
    if fmt == "chrome":
        write_chrome_trace(path, hub, samplers)
    elif fmt == "jsonl":
        write_jsonl(path, hub, samplers)
    else:
        raise ValueError(f"unknown telemetry export format {fmt!r}")
    return fmt
