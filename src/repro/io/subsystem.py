"""Assembly of the standard Firefly I/O complement.

:class:`IoSubsystem` attaches the DEQNA, the RQDX3 and the MDC to a
machine's QBus, reserves a buffer arena in low physical memory (the
QBus map can only reach the first 16 MB), loads the mapping registers,
and allocates the MDC's work queue and input area.

The arena is placed at the top of the DMA-reachable region, clear of
the synthetic workload's per-CPU spans and of the Topaz kernel's
private allocations (both grow from the bottom).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bus.qbus import DMA_REACH_WORDS, QBUS_PAGE_WORDS
from repro.common.errors import ConfigurationError
from repro.io.disk import DiskController, DiskParams
from repro.io.ethernet import EthernetController, EthernetParams
from repro.io.mdc import DisplayController, MdcParams, MdcWorkQueue


class IoSubsystem:
    """The devices of Figure 1's QBus, wired to one machine."""

    def __init__(self, machine, arena_words: int = 65536,
                 mdc_queue_entries: int = 64,
                 disk_params: Optional[DiskParams] = None,
                 ethernet_params: Optional[EthernetParams] = None,
                 mdc_params: Optional[MdcParams] = None) -> None:
        if machine.qbus is None:
            raise ConfigurationError(
                "machine has no QBus; build it with io_enabled=True")
        self.machine = machine
        self.qbus = machine.qbus

        reach = min(DMA_REACH_WORDS, machine.memory.total_words)
        shared_base = machine.shared_region.base_word
        top = min(reach, shared_base)
        arena_base = (top - arena_words) // QBUS_PAGE_WORDS * QBUS_PAGE_WORDS
        if arena_base <= 0:
            raise ConfigurationError("no room for the I/O arena")
        self.arena_base = arena_base
        self.arena_words = arena_words
        self._cursor = arena_base

        # Map QBus pages [0, arena_words/page) onto the arena.
        self.qbus.map.map_region(0, arena_base, arena_words)

        self.ethernet = EthernetController(machine.sim, self.qbus,
                                           ethernet_params)
        self.disk = DiskController(machine.sim, self.qbus, disk_params)

        queue_base, queue_qbus = self.alloc(
            2 + mdc_queue_entries * 6, "MDC work queue")
        input_base, input_qbus = self.alloc(8, "MDC input area")
        self.mdc_queue = MdcWorkQueue(queue_base, queue_qbus,
                                      mdc_queue_entries)
        self.mdc = DisplayController(machine.sim, self.qbus, self.mdc_queue,
                                     input_base, input_qbus, mdc_params)

    def alloc(self, words: int, what: str = "buffer") -> Tuple[int, int]:
        """Allocate arena words; returns (firefly address, QBus address)."""
        if self._cursor + words > self.arena_base + self.arena_words:
            raise ConfigurationError(
                f"I/O arena exhausted allocating {what} ({words} words)")
        firefly = self._cursor
        self._cursor += words
        return firefly, firefly - self.arena_base

    def to_qbus(self, firefly_address: int) -> int:
        """Translate an arena address to its QBus view."""
        if not (self.arena_base <= firefly_address
                < self.arena_base + self.arena_words):
            raise ConfigurationError(
                f"{firefly_address:#x} is outside the mapped I/O arena")
        return firefly_address - self.arena_base

    def start(self) -> None:
        """Launch the device background processes (the MDC's loops)."""
        self.mdc.start()
