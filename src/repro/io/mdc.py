"""The MDC: the Firefly's monochrome display controller.

Paper §3, §5: the MDC is a half-size board with a 10 MHz 29116
microprocessor and a one-megapixel frame buffer; three-quarters of the
buffer is the 1024x768 visible bitmap.  Its defining design choice is
*symmetry*: rather than being driven by programmed I/O from one
processor, it "operates by periodically polling a work queue in main
memory using DMA", so any processor paints by ordinary stores into the
queue.  Measured capabilities: ~16 megapixels/second for large areas,
~20,000 10-point characters/second from the off-screen font cache, and
keyboard/mouse state deposited into main memory sixty times a second.

The model keeps a real bitmap (numpy uint8), executes BitBlt-style
commands with the published throughput figures, and performs every
queue access through the QBus DMA path — so display activity shows up
on the MBus exactly where the hardware's would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.bus.qbus import QBus
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.events import Simulator
from repro.common.stats import StatSet

ENTRY_WORDS = 6
"""Words per work-queue entry: opcode + four args + sequence."""


class DisplayCommand(enum.IntEnum):
    """Work-queue opcodes."""

    NOP = 0
    FILL_RECT = 1        # args: x, y, width, height
    PAINT_CHARS = 2      # args: x, y, count (10-point cells, font cache)
    BLT_FROM_MEMORY = 3  # args: qbus word address, words, x, y


@dataclass(frozen=True)
class MdcParams:
    """Throughput and polling constants (from the paper's figures)."""

    width: int = 1024
    height: int = 768
    pixels_per_cycle: float = 1.6       # 16 Mpixel/s at 100 ns cycles
    cycles_per_char: int = 500          # 20,000 chars/s
    char_cell: Tuple[int, int] = (8, 13)
    poll_interval_cycles: int = 2_000   # 200 us between queue polls
    input_period_cycles: int = 166_667  # 60 Hz keyboard/mouse deposits
    input_words: int = 6                # mouse x, y, buttons + key bitmap

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("display must have positive size")
        if self.pixels_per_cycle <= 0 or self.cycles_per_char <= 0:
            raise ConfigurationError("throughput constants must be positive")


class MdcWorkQueue:
    """The in-memory command ring: head/tail words plus entries.

    Producers (any CPU) advance ``head``; the MDC advances ``tail``.
    Addresses exist in two views: Firefly physical (producer stores)
    and QBus (the MDC's DMA), related by the subsystem's map.
    """

    def __init__(self, firefly_base: int, qbus_base: int,
                 capacity: int) -> None:
        if capacity < 2:
            raise ConfigurationError("queue needs at least two entries")
        self.firefly_base = firefly_base
        self.qbus_base = qbus_base
        self.capacity = capacity

    @property
    def head_address(self) -> int:
        return self.firefly_base

    @property
    def tail_address(self) -> int:
        return self.firefly_base + 1

    def entry_address(self, slot: int) -> int:
        return self.firefly_base + 2 + (slot % self.capacity) * ENTRY_WORDS

    @property
    def head_qbus(self) -> int:
        return self.qbus_base

    @property
    def tail_qbus(self) -> int:
        return self.qbus_base + 1

    def entry_qbus(self, slot: int) -> int:
        return self.qbus_base + 2 + (slot % self.capacity) * ENTRY_WORDS

    @property
    def total_words(self) -> int:
        return 2 + self.capacity * ENTRY_WORDS

    def enqueue_direct(self, memory, command: DisplayCommand,
                       args: Tuple[int, ...] = ()) -> None:
        """Host-level enqueue by direct poke (device benches/tests).

        Workload code should instead store through a CPU cache (the
        symmetric path); see the display example.
        """
        head = memory.peek(self.head_address)
        tail = memory.peek(self.tail_address)
        if (head + 1) % self.capacity == tail % self.capacity:
            raise SimulationError("display work queue overflow")
        base = self.entry_address(head)
        words = [int(command)] + list(args) + [0] * (ENTRY_WORDS - 1
                                                     - len(args))
        for i, word in enumerate(words[:ENTRY_WORDS]):
            memory.poke(base + i, word)
        memory.poke(self.head_address, (head + 1) % self.capacity)


class DisplayController:
    """The MDC proper: poll loop, command execution, input deposits."""

    def __init__(self, sim: Simulator, qbus: QBus, queue: MdcWorkQueue,
                 input_firefly_base: int, input_qbus_base: int,
                 params: Optional[MdcParams] = None,
                 name: str = "mdc") -> None:
        self.sim = sim
        self.qbus = qbus
        self.queue = queue
        self.params = params or MdcParams()
        self.input_firefly_base = input_firefly_base
        self.input_qbus_base = input_qbus_base
        self.name = name
        self.stats = StatSet(name)
        p = self.params
        self.framebuffer = np.zeros((p.height, p.width), dtype=np.uint8)
        self._tail = 0
        self._input_sequence = 0
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Launch the poll loop and the 60 Hz input deposit process."""
        if self._started:
            return
        self.sim.process(self._poll_loop(), name=f"{self.name}.poll")
        self.sim.process(self._input_loop(), name=f"{self.name}.input")
        self._started = True

    # -- the poll loop ---------------------------------------------------------

    def _poll_loop(self):
        params = self.params
        while True:
            head_words = yield from self.qbus.dma_read_block(
                self.queue.head_qbus, 1)
            head = head_words[0] % self.queue.capacity
            self.stats.incr("polls")
            if head == self._tail:
                yield self.sim.timeout(params.poll_interval_cycles)
                continue
            while self._tail != head:
                entry = yield from self.qbus.dma_read_block(
                    self.queue.entry_qbus(self._tail), ENTRY_WORDS)
                yield from self._execute(entry)
                self._tail = (self._tail + 1) % self.queue.capacity
                yield from self.qbus.dma_write_block(
                    self.queue.tail_qbus, [self._tail])

    def _execute(self, entry: List[int]):
        opcode = entry[0]
        params = self.params
        if opcode == DisplayCommand.NOP:
            return
        if opcode == DisplayCommand.FILL_RECT:
            x, y, width, height = entry[1:5]
            pixels = self._clip_fill(x, y, width, height, value=1)
            yield self.sim.timeout(max(1, int(pixels / params.pixels_per_cycle)))
            self.stats.incr("fills")
            self.stats.incr("pixels_painted", pixels)
            return
        if opcode == DisplayCommand.PAINT_CHARS:
            x, y, count = entry[1:4]
            cell_w, cell_h = params.char_cell
            for i in range(count):
                self._clip_fill(x + i * cell_w, y, cell_w - 1, cell_h - 2,
                                value=1)
            yield self.sim.timeout(max(1, count * params.cycles_per_char))
            self.stats.incr("chars_painted", count)
            return
        if opcode == DisplayCommand.BLT_FROM_MEMORY:
            source, words, x, y = entry[1:5]
            data = yield from self.qbus.dma_read_block(source, words)
            pixels = words * 32
            # Unpack each word's 32 bits along a row at (x, y).
            row = np.zeros(pixels, dtype=np.uint8)
            for i, word in enumerate(data):
                for bit in range(32):
                    row[i * 32 + bit] = (word >> bit) & 1
            self._paste_row(x, y, row)
            yield self.sim.timeout(max(1, int(pixels / params.pixels_per_cycle)))
            self.stats.incr("blts")
            self.stats.incr("pixels_painted", pixels)
            return
        raise SimulationError(f"MDC: unknown opcode {opcode}")

    def _clip_fill(self, x: int, y: int, width: int, height: int,
                   value: int) -> int:
        """Fill a clipped rectangle; return the pixel count painted."""
        p = self.params
        x0, y0 = max(0, x), max(0, y)
        x1, y1 = min(p.width, x + max(0, width)), min(p.height,
                                                      y + max(0, height))
        if x1 <= x0 or y1 <= y0:
            return 0
        self.framebuffer[y0:y1, x0:x1] = value
        return (x1 - x0) * (y1 - y0)

    def _paste_row(self, x: int, y: int, row: np.ndarray) -> None:
        p = self.params
        if not 0 <= y < p.height:
            return
        x0 = max(0, x)
        x1 = min(p.width, x + len(row))
        if x1 <= x0:
            return
        self.framebuffer[y, x0:x1] = row[x0 - x:x1 - x]

    # -- input deposits --------------------------------------------------------------

    def _input_loop(self):
        """Sixty times a second: mouse position + raw keyboard bitmap."""
        while True:
            yield self.sim.timeout(self.params.input_period_cycles)
            self._input_sequence += 1
            seq = self._input_sequence
            mouse_x = (seq * 7) % self.params.width
            mouse_y = (seq * 3) % self.params.height
            words = [mouse_x, mouse_y, seq & 0x7]
            words += [(seq >> i) & 0xFFFF for i in range(
                self.params.input_words - 3)]
            yield from self.qbus.dma_write_block(self.input_qbus_base, words)
            self.stats.incr("input_deposits")

    # -- reporting ----------------------------------------------------------------------

    def lit_pixels(self) -> int:
        """Pixels currently set in the frame buffer."""
        return int(self.framebuffer.sum())

    def render_ascii(self, scale: int = 32) -> str:
        """A downsampled view of the bitmap, for examples."""
        h, w = self.framebuffer.shape
        rows = []
        for y in range(0, h, scale):
            row = ""
            for x in range(0, w, scale):
                block = self.framebuffer[y:y + scale, x:x + scale]
                row += "#" if block.mean() > 0.5 else (
                    "+" if block.any() else ".")
            rows.append(row)
        return "\n".join(rows)
