"""The RQDX3 disk controller.

A buffered QBus DMA controller for rigid (and floppy) disks.  The
paper notes the disk is "buffered from applications by a large read
cache and a large write buffer", so only the mechanical and DMA costs
matter to system behaviour; the model charges a seek (distance-
dependent), rotational latency, media transfer pacing, and the QBus
DMA of the data through the I/O processor's cache.

Units: LBNs are 512-byte blocks (128 words), the classic DEC sector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.bus.qbus import QBus
from repro.common.errors import ConfigurationError
from repro.common.events import Simulator
from repro.common.stats import StatSet

WORDS_PER_BLOCK = 128
"""One 512-byte sector."""


@dataclass(frozen=True)
class DiskParams:
    """Mechanics of a mid-1980s 5.25" winchester (RD53-class).

    Cycles are 100 ns: 30 ms average seek = 300 000 cycles; 3600 rpm
    gives an 8.3 ms half-rotation = 83 000 cycles; ~625 KB/s media rate
    = one word per 6.4 us = 64 cycles.
    """

    average_seek_cycles: int = 300_000
    max_seek_cycles: int = 600_000
    half_rotation_cycles: int = 83_000
    cycles_per_word: int = 64
    blocks: int = 138_000           # ~71 MB, an RD53
    pio_cycles: int = 10

    def __post_init__(self) -> None:
        if self.blocks <= 0:
            raise ConfigurationError("disk must have blocks")
        if min(self.average_seek_cycles, self.half_rotation_cycles,
               self.cycles_per_word) < 0:
            raise ConfigurationError("negative timing parameter")


class DiskController:
    """The RQDX3: one request at a time, seek + rotate + transfer + DMA."""

    def __init__(self, sim: Simulator, qbus: QBus,
                 params: Optional[DiskParams] = None,
                 name: str = "rqdx3") -> None:
        self.sim = sim
        self.qbus = qbus
        self.params = params or DiskParams()
        self.name = name
        self._mech = sim.resource(f"{name}.mech")
        self._head_lbn = 0
        self.stats = StatSet(name)
        # The medium's contents, block -> words (sparse; zero-filled).
        self._media = {}

    def _seek_cycles(self, lbn: int) -> int:
        """Distance-scaled seek plus average rotational latency."""
        p = self.params
        distance = abs(lbn - self._head_lbn) / p.blocks
        seek = int(p.average_seek_cycles * (0.4 + 1.2 * distance))
        return min(seek, p.max_seek_cycles) + p.half_rotation_cycles

    def read_blocks(self, lbn: int, nblocks: int, qbus_word_address: int):
        """Generator: read blocks into mapped memory via DMA."""
        self._check(lbn, nblocks)
        yield from self.qbus.pio(self.params.pio_cycles)
        yield self._mech.acquire()
        yield self.sim.timeout(self._seek_cycles(lbn))
        self._head_lbn = lbn + nblocks
        for block in range(nblocks):
            yield self.sim.timeout(
                self.params.cycles_per_word * WORDS_PER_BLOCK)
            words = self._media.get(lbn + block, [0] * WORDS_PER_BLOCK)
            yield from self.qbus.dma_write_block(
                qbus_word_address + block * WORDS_PER_BLOCK, words)
        self._mech.release(self._mech.holder)
        self.stats.incr("reads")
        self.stats.incr("blocks_read", nblocks)

    def write_blocks(self, lbn: int, nblocks: int, qbus_word_address: int):
        """Generator: write blocks from mapped memory via DMA."""
        self._check(lbn, nblocks)
        yield from self.qbus.pio(self.params.pio_cycles)
        yield self._mech.acquire()
        yield self.sim.timeout(self._seek_cycles(lbn))
        self._head_lbn = lbn + nblocks
        for block in range(nblocks):
            words = yield from self.qbus.dma_read_block(
                qbus_word_address + block * WORDS_PER_BLOCK,
                WORDS_PER_BLOCK)
            self._media[lbn + block] = list(words)
            yield self.sim.timeout(
                self.params.cycles_per_word * WORDS_PER_BLOCK)
        self._mech.release(self._mech.holder)
        self.stats.incr("writes")
        self.stats.incr("blocks_written", nblocks)

    def peek_block(self, lbn: int) -> List[int]:
        """Media contents without timing (tests)."""
        return list(self._media.get(lbn, [0] * WORDS_PER_BLOCK))

    def _check(self, lbn: int, nblocks: int) -> None:
        if nblocks <= 0:
            raise ConfigurationError("block count must be positive")
        if not 0 <= lbn <= self.params.blocks - nblocks:
            raise ConfigurationError(
                f"blocks [{lbn}, {lbn + nblocks}) beyond disk end "
                f"{self.params.blocks}")
