"""I/O device models: Ethernet (DEQNA), disk (RQDX3) and the MDC display.

All three sit on the QBus behind the I/O processor (paper §3, §5):
their DMA flows through the I/O processor's cache (misses do not
allocate) and is bandwidth-limited by the QBus.  The MDC is the
symmetric one — it polls a work queue in main memory, so *any*
processor can drive the display by ordinary stores; the disk and
network need a few programmed-I/O instructions on the I/O processor to
start a transfer.
"""

from repro.io.disk import DiskController, DiskParams
from repro.io.ethernet import EthernetController, EthernetParams, RemoteEndpoint
from repro.io.mdc import DisplayCommand, DisplayController, MdcParams, MdcWorkQueue
from repro.io.subsystem import IoSubsystem

__all__ = [
    "DiskController",
    "DiskParams",
    "DisplayCommand",
    "DisplayController",
    "EthernetController",
    "EthernetParams",
    "IoSubsystem",
    "MdcParams",
    "MdcWorkQueue",
    "RemoteEndpoint",
]
