"""The DEQNA Ethernet controller.

A standard DEC QBus DMA device: the driver (on the I/O processor)
loads mapping registers, pokes device registers (programmed I/O), and
the controller moves packet bytes between main memory and the 10 Mbit/s
wire.  The paper's symmetric abstraction: "Any processor can enqueue
work for the network and then initiate the transfer by a specialized
interprocessor interrupt to the I/O processor" — modelled by
:meth:`EthernetController.transmit_from` being callable from any
thread, with the PIO start charged to the QBus.

At 10 Mbit/s one bit takes exactly one 100 ns simulator cycle, so wire
time in cycles equals packet bits — a pleasing coincidence of the
Firefly's clocking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bus.qbus import QBus
from repro.common.errors import ConfigurationError
from repro.common.events import Simulator
from repro.common.stats import StatSet

BITS_PER_CYCLE = 1.0
"""10 Mbit/s on a 100 ns cycle: one bit per cycle."""


@dataclass(frozen=True)
class EthernetParams:
    """Link and framing constants (10BASE Ethernet, DEQNA)."""

    header_bytes: int = 18          # MAC header + CRC
    preamble_bits: int = 64
    interframe_gap_bits: int = 96
    max_payload_bytes: int = 1500
    pio_cycles: int = 8             # device-register pokes per transfer
    controller_overhead_cycles: int = 5800
    """Per-frame driver + interrupt + descriptor work serialised on the
    (single-buffered) controller: the DEQNA cannot start the next frame
    until the host has serviced the completion of this one.  This term
    is what holds sustained RPC goodput well below the 10 Mbit/s wire
    rate (the paper's 4.6 Mbit/s, bench A5)."""

    def frame_bits(self, payload_bytes: int) -> int:
        """Wire occupancy of one frame carrying ``payload_bytes``."""
        if payload_bytes <= 0:
            raise ConfigurationError("payload must be positive")
        if payload_bytes > self.max_payload_bytes:
            raise ConfigurationError(
                f"payload {payload_bytes} exceeds Ethernet maximum "
                f"{self.max_payload_bytes}")
        return ((payload_bytes + self.header_bytes) * 8
                + self.preamble_bits + self.interframe_gap_bits)


class RemoteEndpoint:
    """A peer machine across the wire, modelled as a turnaround delay.

    The RPC throughput experiment (paper §6: 4.6 Mbit/s with ~3
    threads) needs a server; building a second full Firefly would
    measure the same client-side phenomena at much higher cost, so the
    remote end is a fixed-latency responder — the documented
    substitution in DESIGN.md.
    """

    def __init__(self, turnaround_cycles: int = 4000) -> None:
        if turnaround_cycles < 0:
            raise ConfigurationError("turnaround must be >= 0")
        self.turnaround_cycles = turnaround_cycles
        self.requests_served = 0

    def service(self, sim: Simulator):
        """Generator: the server-side think time for one call."""
        yield sim.timeout(self.turnaround_cycles)
        self.requests_served += 1


class EthernetController:
    """The DEQNA: serialises frames onto a shared 10 Mbit/s wire."""

    def __init__(self, sim: Simulator, qbus: QBus,
                 params: Optional[EthernetParams] = None,
                 name: str = "deqna", segment=None) -> None:
        self.sim = sim
        self.qbus = qbus
        self.params = params or EthernetParams()
        self.name = name
        self._controller = sim.resource(f"{name}.controller")
        # The physical Ethernet segment.  By default each controller
        # gets a private one; multi-machine experiments pass a shared
        # Resource so both machines' frames serialise on one cable.
        self._segment = segment if segment is not None \
            else sim.resource(f"{name}.segment")
        self.stats = StatSet(name)

    def _require_payload(self, method: str, payload_bytes: int) -> None:
        """Reject empty transfers eagerly, before any DMA is issued."""
        if payload_bytes <= 0:
            raise ValueError(
                f"EthernetController.{method}: payload_bytes must be "
                f"positive, got {payload_bytes!r}")

    def transmit_from(self, qbus_word_address: int, payload_bytes: int,
                      ctx=None):
        """Generator: send one frame whose payload lies in mapped memory.

        The controller is held for the whole frame — PIO start, the
        DMA of the payload through the I/O cache, the wire time, and
        the completion-service overhead — because the DEQNA is
        single-buffered: frame N+1 cannot start until frame N's
        completion has been serviced.  ``ctx`` optionally carries the
        caller's trace context onto the DMA burst events.
        """
        self._require_payload("transmit_from", payload_bytes)
        return self._transmit_from(qbus_word_address, payload_bytes, ctx)

    def _transmit_from(self, qbus_word_address: int, payload_bytes: int,
                       ctx):
        words = -(-payload_bytes // 4)
        yield self._controller.acquire()
        started = self.sim.now
        yield from self.qbus.pio(self.params.pio_cycles)
        yield from self.qbus.dma_read_block(qbus_word_address, words,
                                            ctx=ctx)
        yield from self._hold_wire(payload_bytes)
        yield self.sim.timeout(self.params.controller_overhead_cycles)
        self.stats.incr("controller_cycles", self.sim.now - started)
        self._controller.release(self._controller.holder)
        self.stats.incr("tx_frames")
        self.stats.incr("tx_payload_bytes", payload_bytes)

    def receive_into(self, qbus_word_address: int, payload_bytes: int,
                     values=None, ctx=None):
        """Generator: one inbound frame landing in mapped memory."""
        self._require_payload("receive_into", payload_bytes)
        return self._receive_into(qbus_word_address, payload_bytes,
                                  values, ctx)

    def _receive_into(self, qbus_word_address: int, payload_bytes: int,
                      values, ctx):
        words = -(-payload_bytes // 4)
        if values is None:
            values = [0] * words
        yield self._controller.acquire()
        started = self.sim.now
        yield from self._hold_wire(payload_bytes)
        yield from self.qbus.dma_write_block(qbus_word_address, values,
                                             ctx=ctx)
        yield self.sim.timeout(self.params.controller_overhead_cycles)
        self.stats.incr("controller_cycles", self.sim.now - started)
        self._controller.release(self._controller.holder)
        self.stats.incr("rx_frames")
        self.stats.incr("rx_payload_bytes", payload_bytes)

    def receive_delivered_into(self, qbus_word_address: int,
                               payload_bytes: int, values=None):
        """Generator: service a frame that already crossed the wire.

        In two-machine experiments the *sender's* transmit occupies the
        shared segment; the receiving controller only pays its own
        tenure — DMA into memory plus completion service — otherwise
        each frame would be charged the cable twice.
        """
        self._require_payload("receive_delivered_into", payload_bytes)
        return self._receive_delivered_into(qbus_word_address,
                                            payload_bytes, values)

    def _receive_delivered_into(self, qbus_word_address: int,
                                payload_bytes: int, values):
        words = -(-payload_bytes // 4)
        if values is None:
            values = [0] * words
        yield self._controller.acquire()
        started = self.sim.now
        yield from self.qbus.dma_write_block(qbus_word_address, values)
        yield self.sim.timeout(self.params.controller_overhead_cycles)
        self.stats.incr("controller_cycles", self.sim.now - started)
        self._controller.release(self._controller.holder)
        self.stats.incr("rx_frames")
        self.stats.incr("rx_payload_bytes", payload_bytes)

    def _hold_wire(self, payload_bytes: int):
        bits = self.params.frame_bits(payload_bytes)
        cycles = int(bits / BITS_PER_CYCLE)
        yield self._segment.acquire()
        yield self.sim.timeout(cycles)
        self._segment.release(self._segment.holder)
        self.stats.incr("wire_cycles", cycles)

    def wire_utilization(self, window_cycles: int) -> float:
        """Fraction of the window the wire carried this device's bits."""
        if window_cycles <= 0:
            return 0.0
        return self.stats["wire_cycles"].windowed / window_cycles

    def goodput_bits_per_second(self, window_cycles: int) -> float:
        """Payload bits per second over the current window (both ways)."""
        if window_cycles <= 0:
            return 0.0
        payload = (self.stats["tx_payload_bytes"].windowed
                   + self.stats["rx_payload_bytes"].windowed) * 8
        return payload / (window_cycles * 1e-7)
