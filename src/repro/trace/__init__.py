"""Address-trace tooling: record, store, and replay reference streams.

The paper's own methodology was trace-driven ("Trace-driven simulation
of the MicroVAX CPU, carried out for us by Deborrah Zukowski...").
This package provides the equivalent loop for the reproduction: any
reference source can be recorded to a trace file, and a trace file can
drive a CPU — so cache/protocol experiments can be replayed exactly,
compared across protocols on identical streams, or fed from externally
produced traces.
"""

from repro.trace.format import TraceRecord, decode_record, encode_record
from repro.trace.recorder import RecordingSource
from repro.trace.replay import TraceSource, load_trace, save_trace
from repro.trace.stats import TraceReduction, reduce_trace, working_set_curve

__all__ = [
    "RecordingSource",
    "TraceRecord",
    "TraceReduction",
    "TraceSource",
    "decode_record",
    "encode_record",
    "load_trace",
    "reduce_trace",
    "save_trace",
    "working_set_curve",
]
