"""Address-trace tooling: record, store, and replay reference streams.

The paper's own methodology was trace-driven ("Trace-driven simulation
of the MicroVAX CPU, carried out for us by Deborrah Zukowski...").
This package provides the equivalent loop for the reproduction: any
reference source can be recorded to a trace file, and a trace file can
drive a CPU — so cache/protocol experiments can be replayed exactly,
compared across protocols on identical streams, or fed from externally
produced traces.

For pure statistical runs — anything that only needs the §5.2 model's
(M, D, S) inputs and outputs — :mod:`repro.trace.vectorized` skips the
event loop entirely: batched ``RandomStream`` draws, closed-form bus
service, and the analytic model evaluated at the empirical rates,
validated against the coroutine simulator within the divergence bands.
"""

from repro.trace.format import TraceRecord, decode_record, encode_record
from repro.trace.recorder import RecordingSource
from repro.trace.replay import TraceSource, load_trace, save_trace
from repro.trace.stats import TraceReduction, reduce_trace, working_set_curve
from repro.trace.vectorized import (VectorizedResult, divergence_check,
                                    numpy_available, params_from_reduction,
                                    run_vectorized)

__all__ = [
    "RecordingSource",
    "TraceRecord",
    "TraceReduction",
    "TraceSource",
    "VectorizedResult",
    "decode_record",
    "divergence_check",
    "encode_record",
    "load_trace",
    "numpy_available",
    "params_from_reduction",
    "reduce_trace",
    "run_vectorized",
    "save_trace",
    "working_set_curve",
]
