"""Trace files and the trace-driven reference source."""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.common.events import Event
from repro.processor.cpu import InstructionBundle, Processor
from repro.trace.format import TraceRecord, decode_record, encode_record


def save_trace(records: Iterable[TraceRecord],
               path: Union[str, Path]) -> int:
    """Write records to a trace file; returns the record count."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for record in records:
            handle.write(encode_record(record))
            handle.write("\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a trace file (blank lines and ``#`` comments are skipped)."""
    records: List[TraceRecord] = []
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            records.append(decode_record(stripped, line_number))
    return records


class TraceSource:
    """Drives a CPU from a recorded trace.

    ``repeat=True`` loops the trace forever (steady-state experiments);
    otherwise the CPU halts at end of trace.
    """

    def __init__(self, records: Sequence[TraceRecord],
                 repeat: bool = False) -> None:
        self.records = list(records)
        self.repeat = repeat
        self._cursor = 0
        self.replays = 0

    def next_instruction(self, cpu: Processor) -> Union[
            InstructionBundle, Event, None]:
        if self._cursor >= len(self.records):
            if not self.repeat or not self.records:
                return None
            self._cursor = 0
            self.replays += 1
        record = self.records[self._cursor]
        self._cursor += 1
        next_pc = self._peek_next_pc()
        return InstructionBundle(
            refs=record.refs,
            is_jump=record.is_jump,
            prefetch_addresses=(next_pc, next_pc + 1) if next_pc is not None
            else ())

    def _peek_next_pc(self):
        if self._cursor < len(self.records):
            for ref in self.records[self._cursor].refs:
                if ref.kind.is_instruction:
                    return ref.address
        return None
