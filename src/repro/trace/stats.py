"""Trace analysis: the statistics the paper derived from its traces.

Given a recorded trace, compute the quantities §5.2's analysis
consumed — the reference mix (IR/DR/DW per instruction), and the
simulated cache statistics M (miss rate) and D (dirty fraction) for a
given cache geometry — plus a working-set curve (distinct words versus
window length), the classic characterisation of a program's locality.

This is the half of the paper's methodology that Zukowski's
trace-driven runs performed; with it, any externally produced trace
can be reduced to the analytic model's inputs:

>>> from repro.analytic import AnalyticParameters, FireflyAnalyticModel
>>> reduced = reduce_trace(records)                  # doctest: +SKIP
>>> model = FireflyAnalyticModel(AnalyticParameters(
...     miss_rate=reduced.miss_rate,
...     dirty_fraction=reduced.dirty_fraction))      # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cache.cache import CacheGeometry
from repro.common.errors import ConfigurationError
from repro.common.stats import ratio
from repro.common.types import AccessKind
from repro.trace.format import TraceRecord


@dataclass(frozen=True)
class TraceReduction:
    """A trace reduced to the analytic model's inputs."""

    instructions: int
    references: int
    instruction_reads: int
    data_reads: int
    data_writes: int
    miss_rate: float
    dirty_fraction: float

    @property
    def refs_per_instruction(self) -> float:
        return self.references / self.instructions if self.instructions else 0

    @property
    def mix(self):
        """The measured per-instruction mix, as a ReferenceMix."""
        from repro.processor.mix import ReferenceMix
        n = max(self.instructions, 1)
        return ReferenceMix(self.instruction_reads / n,
                            self.data_reads / n,
                            self.data_writes / n)


def reduce_trace(records: Sequence[TraceRecord],
                 geometry: CacheGeometry = CacheGeometry.MICROVAX
                 ) -> TraceReduction:
    """Run the trace through a standalone cache; report mix, M and D.

    This is a functional cache simulation (tags and dirty bits only —
    no bus, no data), exactly what trace-driven miss-rate studies use.
    """
    if not records:
        raise ConfigurationError("cannot reduce an empty trace")
    tags: List[int] = [-1] * geometry.lines
    dirty: List[bool] = [False] * geometry.lines
    counts = {kind: 0 for kind in AccessKind}
    hits = misses = 0
    for record in records:
        for ref in record.refs:
            counts[ref.kind] += 1
            index, tag, _ = geometry.split(ref.address)
            if tags[index] == tag:
                hits += 1
            else:
                misses += 1
                tags[index] = tag
                dirty[index] = False
            if ref.kind is AccessKind.DATA_WRITE:
                dirty[index] = True
    valid = sum(1 for t in tags if t >= 0)
    dirty_lines = sum(1 for i, t in enumerate(tags) if t >= 0 and dirty[i])
    return TraceReduction(
        instructions=len(records),
        references=hits + misses,
        instruction_reads=counts[AccessKind.INSTRUCTION_READ],
        data_reads=counts[AccessKind.DATA_READ],
        data_writes=counts[AccessKind.DATA_WRITE],
        # A trace of pure no-reference records has no defined miss rate;
        # NaN keeps the reduction usable (mix, counts) while any attempt
        # to feed it to AnalyticParameters fails its (0,1) validation
        # instead of crashing here with ZeroDivisionError.
        miss_rate=ratio(misses, hits + misses, default=float("nan")),
        dirty_fraction=dirty_lines / valid if valid else 0.0)


def working_set_curve(records: Sequence[TraceRecord],
                      window_lengths: Sequence[int] = (100, 300, 1000,
                                                       3000, 10000)
                      ) -> Dict[int, float]:
    """Denning working sets: mean distinct words per reference window.

    For each window length W, slide a window of W consecutive
    references over the trace (sampled starts) and average the number
    of distinct word addresses inside — the curve whose knee tells you
    what cache size a program wants.
    """
    addresses: List[int] = [ref.address for record in records
                            for ref in record.refs]
    if not addresses:
        raise ConfigurationError("trace has no references")
    curve: Dict[int, float] = {}
    for window in window_lengths:
        if window <= 0:
            raise ConfigurationError("window lengths must be positive")
        if window >= len(addresses):
            curve[window] = float(len(set(addresses)))
            continue
        starts = range(0, len(addresses) - window,
                       max(1, (len(addresses) - window) // 16))
        sizes = [len(set(addresses[s:s + window])) for s in starts]
        curve[window] = sum(sizes) / len(sizes)
    return curve
