"""Recording wrapper: capture any reference source's stream."""

from __future__ import annotations

from typing import List, Union

from repro.common.events import Event
from repro.processor.cpu import InstructionBundle, Processor, ReferenceSource
from repro.trace.format import TraceRecord


class RecordingSource:
    """Wraps a source, recording each instruction it produces.

    The recorded stream is the *issued* stream: prefetch-wasted fetches
    happen inside the CPU model and are not part of the source's
    instructions, so a recorded trace replays identically regardless of
    prefetcher configuration.
    """

    def __init__(self, inner: ReferenceSource) -> None:
        self.inner = inner
        self.records: List[TraceRecord] = []

    def next_instruction(self, cpu: Processor) -> Union[
            InstructionBundle, Event, None]:
        item = self.inner.next_instruction(cpu)
        if isinstance(item, InstructionBundle):
            self.records.append(TraceRecord(refs=item.refs,
                                            is_jump=item.is_jump))
        return item
