"""Vectorized statistical mode: §5.2 runs without the event loop.

The paper's queueing analysis — and the Table 1 regeneration — consume
only aggregate statistics: miss rate M, dirty fraction D, shared-write
fraction S.  For runs where nothing but (M, D, S) and the derived
load/TPI/RP numbers matter, coroutine fidelity is wasted work: the
event loop dispatches one event per simulated tick just to make the
same Bernoulli draws the statistics summarise.  This module makes those
draws in bulk and feeds the measured rates straight into the §5.2
open queueing model (:mod:`repro.analytic.queueing`):

1. **Batched draws.**  Each simulated CPU owns a ``cpu{i}.vector``
   :class:`~repro.common.rng.RandomStream`; per-instruction reference
   counts come from the paper's mix via the same ``floor(n * rate)``
   totals the :class:`~repro.common.rng.FractionalAccumulator` error
   diffusion produces, and every reference makes one uniform draw per
   stochastic decision — miss?, victim dirty?, write shared? — through
   ``random_block`` (PR-5's element-identical bulk path).  The numpy
   backend and the pure-Python backend consume *the same draws in the
   same order* and reduce them to *integer counts*, so their results
   are bit-identical; numpy only accelerates the reduction.

2. **Closed-form bus service.**  Bus occupancy is accumulated in
   closed form — ``bus_op_ticks * (misses + dirty victims + shared
   writes)`` — and the empirical rates are substituted into
   :class:`~repro.analytic.queueing.FireflyAnalyticModel`, whose
   ``NP(L)`` inversion yields the self-consistent load, TPI and RP for
   the configured processor count: exactly the numbers the
   :class:`~repro.observatory.divergence.DivergenceMonitor` predicts
   from a coroutine run's measured window rates.

Validity envelope (see docs/PERFORMANCE.md): the mode is sound for
*open, stationary* workloads whose stochastic structure is i.i.d. per
reference — the synthetic Table 1 sweeps and trace-reduced parameter
studies.  It cannot see closed-loop feedback (cache warm-up
transients, sharing-migration bursts, fault injection, scheduler
interaction), so its outputs are validated against the coroutine
simulator within the DivergenceMonitor's noise bands, never expected
to match byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.analytic.queueing import AnalyticParameters, FireflyAnalyticModel
from repro.common.errors import ConfigurationError
from repro.common.rng import RandomStream

try:  # numpy accelerates the draw reduction; the container bakes it in,
    import numpy as _np  # but the pure-Python path is always available.
except ImportError:  # pragma: no cover - exercised via backend="python"
    _np = None

#: Draws per ``random_block`` refill; bounds peak memory, not results.
DEFAULT_CHUNK = 65_536

#: The two reduction backends (identical results, different hosts).
BACKENDS = ("numpy", "python")


def numpy_available() -> bool:
    """Whether the numpy reduction backend can be selected."""
    return _np is not None


@dataclass(frozen=True)
class VectorizedResult:
    """One vectorized statistical run, reduced to the §5.2 quantities.

    The count fields are exact integers (identical across backends);
    the model fields are the analytic evaluation at the *empirical*
    rates — directly comparable to a coroutine run's measured
    ``bus_load`` / ``mean_tpi`` / RP within the divergence bands.
    """

    processors: int
    instructions: int           # total across CPUs
    references: int
    misses: int
    dirty_victims: int
    shared_writes: int
    data_writes: int
    miss_rate: float            # empirical M-hat
    dirty_fraction: float       # empirical D-hat (victims / misses)
    shared_write_fraction: float  # empirical S-hat
    bus_busy_ticks: int         # closed-form: N * (miss + victim + wthru)
    bus_load: float             # model load at the empirical rates
    mean_tpi: float
    relative_performance: float
    total_performance: float
    ticks: int                  # simulated ticks covered per CPU
    backend: str
    seed: int

    def metrics(self) -> Dict:
        """Flat JSON-safe dict, shaped like a bench scenario's metrics."""
        return {
            "processors": self.processors,
            "instructions": self.instructions,
            "references": self.references,
            "misses": self.misses,
            "dirty_victims": self.dirty_victims,
            "shared_writes": self.shared_writes,
            "miss_rate": self.miss_rate,
            "dirty_fraction": self.dirty_fraction,
            "shared_write_fraction": self.shared_write_fraction,
            "bus_load": self.bus_load,
            "mean_tpi": self.mean_tpi,
            "relative_performance": self.relative_performance,
            "total_performance": self.total_performance,
            "backend": self.backend,
        }


def _resolve_backend(backend: Optional[str]) -> str:
    if backend is None:
        return "numpy" if _np is not None else "python"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown vectorized backend {backend!r}; known: "
            f"{', '.join(BACKENDS)}")
    if backend == "numpy" and _np is None:
        raise ConfigurationError(
            "numpy backend requested but numpy is not importable; "
            "use backend='python'")
    return backend


def _count_below(stream: RandomStream, draws: int, p: float,
                 chunk: int, use_numpy: bool) -> int:
    """How many of the next ``draws`` uniforms fall below ``p``.

    Both backends consume exactly ``draws`` floats from the stream in
    block order and compare with the same ``<`` predicate, so the count
    — and every stream draw after it — is backend-independent.
    """
    remaining = draws
    count = 0
    while remaining > 0:
        block = stream.random_block(min(chunk, remaining))
        remaining -= len(block)
        if use_numpy:
            count += int((_np.asarray(block) < p).sum())
        else:
            count += sum(1 for draw in block if draw < p)
    return count


def params_from_reduction(reduction,
                          base: Optional[AnalyticParameters] = None
                          ) -> AnalyticParameters:
    """Analytic parameters measured from a reduced trace.

    This is the trace-driven entry point: ``reduce_trace`` produces the
    measured mix, M and D; the shared-write fraction (invisible to a
    single-cache reduction) stays at the base value.
    """
    base = base or AnalyticParameters()
    return replace(base, mix=reduction.mix,
                   miss_rate=min(max(reduction.miss_rate, 1e-6), 1 - 1e-6),
                   dirty_fraction=min(max(reduction.dirty_fraction, 0.0),
                                      1.0))


def run_vectorized(processors: int, instructions: int, seed: int,
                   params: Optional[AnalyticParameters] = None,
                   chunk: int = DEFAULT_CHUNK,
                   backend: Optional[str] = None) -> VectorizedResult:
    """Run the statistical mode: batched draws -> §5.2 model outputs.

    ``instructions`` is the per-CPU instruction budget.  Each CPU's
    draws come from its own named stream, mirroring the coroutine
    simulator's stream-per-component rule, so adding a CPU never
    perturbs another CPU's statistics.
    """
    if processors < 1:
        raise ConfigurationError(
            f"processor count must be >= 1, got {processors}")
    if instructions < 1:
        raise ConfigurationError(
            f"instruction budget must be >= 1, got {instructions}")
    if chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
    backend = _resolve_backend(backend)
    use_numpy = backend == "numpy"
    params = params or AnalyticParameters()
    mix = params.mix

    # Per-CPU reference totals: the FractionalAccumulator's
    # error-diffusion sum over n instructions is floor(n * rate), so
    # these closed-form counts match what a coroutine CPU would issue.
    ireads = int(instructions * mix.instruction_reads)
    dreads = int(instructions * mix.data_reads)
    dwrites = int(instructions * mix.data_writes)
    refs_per_cpu = ireads + dreads + dwrites

    references = misses = dirty_victims = shared_writes = 0
    for cpu in range(processors):
        stream = RandomStream(seed, f"cpu{cpu}.vector")
        # Draw order is part of the contract: miss draws for every
        # reference, then one dirty draw per miss, then one shared draw
        # per data write — fixed counts, so both backends stay aligned.
        cpu_misses = _count_below(stream, refs_per_cpu, params.miss_rate,
                                  chunk, use_numpy)
        cpu_dirty = _count_below(stream, cpu_misses, params.dirty_fraction,
                                 chunk, use_numpy)
        cpu_shared = _count_below(stream, dwrites,
                                  params.shared_write_fraction,
                                  chunk, use_numpy)
        references += refs_per_cpu
        misses += cpu_misses
        dirty_victims += cpu_dirty
        shared_writes += cpu_shared

    miss_rate = misses / references if references else 0.0
    dirty_fraction = dirty_victims / misses if misses else 0.0
    shared_fraction = shared_writes / dwrites / processors if dwrites else 0.0

    # Closed-form §5.2 bus service: every miss is one bus read, every
    # dirty victim one write-back, every shared write one write-through
    # — N ticks each.
    bus_ops = misses + dirty_victims + shared_writes
    bus_busy_ticks = params.bus_op_ticks * bus_ops

    empirical = replace(
        params,
        miss_rate=min(max(miss_rate, 1e-6), 1.0 - 1e-6),
        dirty_fraction=min(max(dirty_fraction, 0.0), 1.0),
        shared_write_fraction=min(max(shared_fraction, 0.0), 1.0))
    model = FireflyAnalyticModel(empirical)
    load = model.load_for_processors(processors)
    tpi = model.tpi(load)
    rp = empirical.base_tpi / tpi

    return VectorizedResult(
        processors=processors,
        instructions=instructions * processors,
        references=references,
        misses=misses,
        dirty_victims=dirty_victims,
        shared_writes=shared_writes,
        data_writes=dwrites * processors,
        miss_rate=miss_rate,
        dirty_fraction=dirty_fraction,
        shared_write_fraction=shared_fraction,
        bus_busy_ticks=bus_busy_ticks,
        bus_load=load,
        mean_tpi=tpi,
        relative_performance=rp,
        total_performance=processors * rp,
        ticks=int(instructions * tpi),
        backend=backend,
        seed=seed)


def divergence_check(result: VectorizedResult, measured: Dict[str, float],
                     bands=None) -> Dict[str, Dict]:
    """Compare a vectorized run against coroutine-simulator measurements.

    ``measured`` carries a coroutine run's ``bus_load`` and ``tpi``
    (``mean_tpi`` is accepted as an alias); RP is derived.  Residuals
    follow the DivergenceMonitor's conventions — absolute for load,
    relative for TPI and RP — and the same default bands, so "the
    vectorized mode agrees with the simulator" means precisely "the
    analytic model agrees with the simulator", the paper's own
    slide-rule accuracy standard.  Returns per-metric verdicts plus an
    ``"ok"`` summary entry.
    """
    from repro.observatory.divergence import DivergenceBands

    bands = bands or DivergenceBands()
    tpi = measured.get("tpi", measured.get("mean_tpi"))
    if tpi is None or "bus_load" not in measured:
        raise ConfigurationError(
            "divergence_check needs measured 'bus_load' and 'tpi' "
            "(or 'mean_tpi')")
    base_tpi = result.mean_tpi * result.relative_performance
    comparisons = {
        "bus_load": (measured["bus_load"], result.bus_load,
                     measured["bus_load"] - result.bus_load,
                     bands.bus_load_abs),
        "tpi": (tpi, result.mean_tpi,
                (tpi - result.mean_tpi) / result.mean_tpi,
                bands.tpi_rel),
        "relative_performance": (
            base_tpi / tpi, result.relative_performance,
            (base_tpi / tpi - result.relative_performance)
            / result.relative_performance,
            bands.relative_performance_rel),
    }
    verdicts: Dict[str, Dict] = {}
    all_ok = True
    for metric, (meas, vec, residual, band) in comparisons.items():
        ok = abs(residual) <= band
        all_ok = all_ok and ok
        verdicts[metric] = {"measured": meas, "vectorized": vec,
                            "residual": residual, "band": band, "ok": ok}
    verdicts["ok"] = all_ok
    return verdicts
