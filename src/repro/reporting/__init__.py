"""Text rendering: tables and ASCII diagrams for the benchmark harness.

Every figure the benchmark suite regenerates is rendered from *live*
model objects (the built machine, the implemented protocol FSM, the
running Topaz kernel), never from hard-coded drawings — that is what
makes the figure benches evidence rather than decoration.
"""

from repro.reporting.tables import Column, TextTable
from repro.reporting.figures import (
    render_state_diagram,
    render_system_diagram,
    render_topaz_diagram,
)

__all__ = [
    "Column",
    "TextTable",
    "render_state_diagram",
    "render_system_diagram",
    "render_topaz_diagram",
]
