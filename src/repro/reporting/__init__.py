"""Text rendering: tables and ASCII diagrams for the benchmark harness.

Every figure the benchmark suite regenerates is rendered from *live*
model objects (the built machine, the implemented protocol FSM, the
running Topaz kernel), never from hard-coded drawings — that is what
makes the figure benches evidence rather than decoration.
"""

from repro.reporting.tables import Column, TextTable
from repro.reporting.figures import (
    render_state_diagram,
    render_system_diagram,
    render_topaz_diagram,
)
from repro.reporting.html import render_dashboard
from repro.reporting.timeline import (
    render_event_summary,
    render_phase_timeline,
    render_series_table,
    sparkline,
)

__all__ = [
    "Column",
    "TextTable",
    "render_dashboard",
    "render_event_summary",
    "render_phase_timeline",
    "render_series_table",
    "render_state_diagram",
    "render_system_diagram",
    "render_topaz_diagram",
    "sparkline",
]
