"""Plain-text tables in the paper's style.

>>> table = TextTable([Column("NP", "d"), Column("L", ".2f")])
>>> table.add_row(2, 0.171)
>>> table.add_row(4, 0.33)
>>> print(table.render())
NP     L
 2  0.17
 4  0.33
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class Column:
    """One column: header plus a format spec for its values.

    ``spec`` is a ``format()`` mini-language spec without width —
    widths are computed from the rendered contents.
    """

    header: str
    spec: str = "s"
    align_left: bool = False


class TextTable:
    """Accumulates rows, then renders with computed column widths."""

    def __init__(self, columns: Sequence[Column]) -> None:
        if not columns:
            raise ConfigurationError("a table needs at least one column")
        self.columns = list(columns)
        self._rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        """Format and store one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        cells = []
        for column, value in zip(self.columns, values):
            if value is None:
                cells.append("-")
            else:
                cells.append(format(value, column.spec))
        self._rows.append(cells)

    def add_separator(self) -> None:
        """A horizontal rule between row groups."""
        self._rows.append(None)  # type: ignore[arg-type]

    def render(self, column_gap: str = "  ") -> str:
        """The finished table as a string (no trailing newline)."""
        widths = [len(c.header) for c in self.columns]
        for row in self._rows:
            if row is None:
                continue
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fit(text: str, i: int) -> str:
            if self.columns[i].align_left:
                return text.ljust(widths[i])
            return text.rjust(widths[i])

        lines = [column_gap.join(fit(c.header, i)
                                 for i, c in enumerate(self.columns))]
        for row in self._rows:
            if row is None:
                lines.append("-" * (sum(widths)
                                    + len(column_gap) * (len(widths) - 1)))
            else:
                lines.append(column_gap.join(fit(cell, i)
                                             for i, cell in enumerate(row)))
        return "\n".join(line.rstrip() for line in lines)

    @property
    def row_count(self) -> int:
        return sum(1 for row in self._rows if row is not None)
