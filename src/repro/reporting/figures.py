"""ASCII renderings of the paper's figures, built from live objects.

- **Figure 1** (Firefly system): rendered from a built
  :class:`~repro.system.machine.FireflyMachine` — boards, caches,
  memory modules and I/O devices are read from the object graph.
- **Figure 2** (internal structure of Topaz): rendered from a live
  :class:`~repro.topaz.kernel.TopazKernel`'s address-space table.
- **Figure 3** (cache line states): rendered from the FSM enumeration
  in :mod:`repro.cache.fsm` — i.e. from the protocol implementation
  itself.

(Figure 4, MBus timing, is rendered by
:class:`repro.bus.signals.TimingDiagram` from a live signal trace.)
"""

from __future__ import annotations

from typing import List

from repro.cache.fsm import enumerate_transitions


def render_state_diagram(protocol_name: str = "firefly") -> str:
    """Figure 3: the protocol's state-transition table, measured."""
    transitions = enumerate_transitions(protocol_name)
    lines = [f"Cache line states: {protocol_name} protocol",
             "(arcs measured from the implementation; P = processor "
             "stimulus, M = bus stimulus)", ""]
    current = None
    for t in transitions:
        if t.start is not current:
            current = t.start
            lines.append(f"state {current.value}:")
        lines.append("  " + t.label().strip())
    return "\n".join(lines)


def render_system_diagram(machine) -> str:
    """Figure 1: the machine's boards and buses, from the object graph."""
    config = machine.config
    n = config.processors
    cache_kb = config.effective_cache.size_bytes // 1024
    lines: List[str] = []
    lines.append("Firefly System")
    lines.append("=" * 64)
    lines.append(f"primary processor board: CPU 0 ({config.timing.name}) "
                 f"+ FPU + {cache_kb} KB cache + QBus control")
    secondary_ids = list(range(1, n))
    for board, i in enumerate(range(0, len(secondary_ids), 2)):
        pair = secondary_ids[i:i + 2]
        cpus = " + ".join(f"CPU {c}" for c in pair)
        lines.append(f"secondary board {board + 1}: {cpus} "
                     f"({config.timing.name}, FPU + {cache_kb} KB cache each)")
    lines.append("-" * 64)
    bus_row = " ".join(f"[$ {c.snooper_id}]" for c in machine.caches)
    lines.append(f"caches on MBus:  {bus_row}")
    lines.append("MBus: 100 ns cycles, 4 cycles/op, 10 MB/s; "
                 "MShared + interrupt sidebands")
    lines.append("-" * 64)
    for module in machine.memory.modules:
        role = "master" if module.is_master else "slave"
        lines.append(f"memory module ({role}): {module.size_megabytes:.0f} MB "
                     f"@ word {module.base_word:#x}")
    lines.append("-" * 64)
    if machine.qbus is not None:
        lines.append("QBus (via CPU 0's cache; DMA does not allocate):")
        lines.append("  DEQNA Ethernet | RQDX3 disk | MDC display "
                     "(1024x768 mono, keyboard, mouse)")
    else:
        lines.append("QBus: not configured in this machine instance")
    lines.append("=" * 64)
    return "\n".join(lines)


def render_topaz_diagram(kernel) -> str:
    """Figure 2: Topaz's address spaces and the Nub, from a live kernel."""
    lines: List[str] = []
    lines.append("Internal Structure of Topaz")
    lines.append("=" * 60)
    spaces = list(kernel.address_spaces)
    user_spaces = [s for s in spaces if s.kind.value != "nub"]
    for space in user_spaces:
        threads = kernel.threads_in_space(space)
        thread_note = (f"{len(threads)} thread(s)" if threads
                       else "no threads yet")
        lines.append(f"| {space.name:<28} [{space.kind.value:<9}] "
                     f"{thread_note:>16} |")
    lines.append("|" + " " * 58 + "|")
    lines.append("|   user mode: RPC between all address spaces" +
                 " " * 13 + "|")
    lines.append("=" * 60)
    lines.append("| Nub (VAX kernel mode): virtual memory, thread "
                 "scheduler,  |")
    lines.append("|   simple device drivers, RPC transport" + " " * 18 + "|")
    lines.append("=" * 60)
    lines.append(f"hardware: {kernel.machine.config.processors} processors, "
                 f"{kernel.machine.config.effective_memory_megabytes} MB")
    return "\n".join(lines)
