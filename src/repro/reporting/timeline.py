"""ASCII sparkline / timeline rendering for telemetry data.

The paper's authors watched the Firefly on a logic analyser; this
module is the terminal equivalent: sampler series become Unicode
sparklines, hub events become a per-phase activity summary, so a
``firefly-sim`` run can show *when* the bus saturated or the run queue
backed up without leaving the shell.

Rendering is pure string construction over
:class:`~repro.telemetry.probe.TelemetryHub` and
:class:`~repro.telemetry.sampler.Sampler` objects — no I/O here.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.probe import TelemetryHub
from repro.telemetry.sampler import Sampler, Series

BLOCKS = "▁▂▃▄▅▆▇█"
"""Eighth-block ramp used for sparklines."""

GAP = "·"
"""Placeholder glyph for points with no defined value (NaN/inf)."""


def sparkline(values: Sequence[float], width: int = 60,
              lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render ``values`` as a fixed-width Unicode sparkline.

    Longer series are bucketed (bucket mean) down to ``width``; shorter
    ones render one glyph per value.  ``lo``/``hi`` pin the scale
    (e.g. 0..1 for a load fraction); by default the data's own range is
    used, and a flat series renders as a run of the lowest block.
    Degenerate inputs render placeholders rather than raising: an empty
    series gives "", and non-finite points (a NaN-safe miss rate over
    an idle window) render as :data:`GAP` dots.

    >>> sparkline([0, 1, 2, 3], width=4, lo=0, hi=3)
    '▁▃▆█'
    >>> sparkline([0.0, float("nan"), 1.0], width=4)
    '▁·█'
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if not values:
        return ""
    values = _bucket(list(values), width)
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return GAP * len(values)
    floor = min(finite) if lo is None else lo
    ceil = max(finite) if hi is None else hi
    span = ceil - floor
    top = len(BLOCKS) - 1
    out = []
    for v in values:
        if not math.isfinite(v):
            out.append(GAP)
        elif span <= 0:
            out.append(BLOCKS[0])
        else:
            scaled = (min(max(v, floor), ceil) - floor) / span
            out.append(BLOCKS[round(scaled * top)])
    return "".join(out)


def _bucket(values: List[float], width: int) -> List[float]:
    """Downsample to at most ``width`` points by bucket means.

    Bucket means skip non-finite members; a bucket with no finite
    member stays NaN (one :data:`GAP` glyph) instead of poisoning the
    mean.
    """
    n = len(values)
    if n <= width:
        return values
    out = []
    for i in range(width):
        start = i * n // width
        end = max(start + 1, (i + 1) * n // width)
        finite = [v for v in values[start:end] if math.isfinite(v)]
        out.append(sum(finite) / len(finite) if finite else float("nan"))
    return out


def render_series_table(sampler: Sampler, width: int = 48,
                        names: Optional[Sequence[str]] = None) -> str:
    """One sparkline row per sampler series, with min/mean/max columns."""
    series = (sampler.all_series() if names is None
              else [sampler.series(n) for n in names])
    lines = []
    label_width = max((len(s.name) for s in series), default=0)
    for s in series:
        values = s.values()
        if not values:
            lines.append(f"{s.name:<{label_width}}  (no samples)")
            continue
        finite = [v for v in values if math.isfinite(v)]
        if not finite:
            lines.append(f"{s.name:<{label_width}}  "
                         f"{sparkline(values, width)}  (no finite samples)")
            continue
        lines.append(
            f"{s.name:<{label_width}}  {sparkline(values, width)}  "
            f"min={min(finite):.3g} mean={sum(finite) / len(finite):.3g} "
            f"max={max(finite):.3g}")
    return "\n".join(lines)


def render_event_summary(hub: TelemetryHub, top: int = 12) -> str:
    """Event counts by name, densest first."""
    counts: Dict[str, int] = {}
    for event in hub.events:
        counts[event.name] = counts.get(event.name, 0) + 1
    if not counts:
        return "(no events)"
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    name_width = max(len(name) for name, _ in ranked)
    total = max(count for _, count in ranked)
    lines = []
    for name, count in ranked:
        bar = "#" * max(1, round(24 * count / total))
        lines.append(f"{name:<{name_width}}  {count:>8}  {bar}")
    if len(counts) > top:
        lines.append(f"... and {len(counts) - top} more event kinds")
    return "\n".join(lines)


def _phase_spans(hub: TelemetryHub) -> List[Tuple[str, int, int]]:
    """(name, start, end) spans from ``phase.*`` markers, in order."""
    markers = [(e.time, e.name.split(".", 1)[1]) for e in hub.events
               if e.name.startswith("phase.")]
    markers.sort()
    end_time = hub.now()
    spans = []
    for i, (time, name) in enumerate(markers):
        if name == "end":
            continue
        nxt = markers[i + 1][0] if i + 1 < len(markers) else end_time
        spans.append((name, time, nxt))
    return spans


def render_phase_timeline(hub: TelemetryHub, sampler: Optional[Sampler] = None,
                          width: int = 48) -> str:
    """The per-phase run summary the CLI prints.

    For each ``phase.*`` span (warm-up, measurement window): the event
    count inside it, and — when a sampler is given — a sparkline of
    each series restricted to that span.  Without phase markers the
    whole run is rendered as one span.
    """
    spans = _phase_spans(hub) or [("run", 0, hub.now())]
    sections = []
    for name, start, end in spans:
        inside = sum(1 for e in hub.events
                     if start <= e.time < end and not e.name.startswith("phase."))
        header = (f"phase {name}: cycles {start}..{end} "
                  f"({end - start} cycles, {inside} events)")
        lines = [header, "-" * len(header)]
        if sampler is not None:
            label_width = max((len(s.name) for s in sampler.all_series()),
                              default=0)
            for s in sampler.all_series():
                values = [v for t, v in s.samples() if start <= t < end]
                if not values:
                    continue
                finite = [v for v in values if math.isfinite(v)]
                stats = (f"mean={sum(finite) / len(finite):.3g} "
                         f"max={max(finite):.3g}" if finite
                         else "(no finite samples)")
                lines.append(
                    f"  {s.name:<{label_width}}  "
                    f"{sparkline(values, width)}  {stats}")
        sections.append("\n".join(lines))
    sections.append("event mix\n---------\n" + render_event_summary(hub))
    return "\n\n".join(sections)
