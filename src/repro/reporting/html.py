"""The static regression-observatory dashboard (stdlib-only HTML).

``firefly-sim campaign report`` renders one self-contained HTML file —
no server, no JavaScript, no external assets — from two inputs:

- the committed ``BENCH_<n>.json`` trajectory (perf history across
  PRs): per-scenario ticks/s trend charts with noise bands, and the
  noise-aware regression verdicts of
  :func:`repro.observatory.bench.compare_bench` between consecutive
  files;
- campaign ledgers from the :mod:`repro.campaign` store: trial
  rollups, §5.2 divergence residuals from sweep/table1 results, and
  the chaos recovery-time ledger (detect latency and recovery time per
  injected fault).

Charts are inline SVG with hover ``<title>`` tooltips and an adjacent
table view of the same numbers; colors come from a CVD-validated
palette declared once as CSS custom properties with selected light and
dark steps (``prefers-color-scheme`` plus a ``data-theme`` override).
The output contains no timestamps or host fields, so regenerating the
dashboard from the same inputs is byte-identical.
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Optional, Sequence, Tuple

# Categorical series slots (validated order, light/dark selected per
# surface); scenarios take slots in sorted order and never cycle.
_SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100", "#e87ba4",
                 "#008300", "#4a3aa7", "#e34948")
_SERIES_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500", "#d55181",
                "#008300", "#9085e9", "#e66767")

_CSS = """
.ffly {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --surface-2: #f0efec;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #d8d7d2;
  --good: #008300;
  --bad: #c73635;
  --band: rgba(42, 120, 214, 0.16);
  font: 14px/1.45 system-ui, sans-serif;
  color: var(--text-primary);
  background: var(--surface-1);
  margin: 0 auto;
  max-width: 1080px;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .ffly {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --surface-2: #383835;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #44443f;
    --bad: #e66767;
    --band: rgba(57, 135, 229, 0.22);
  }
}
:root[data-theme="dark"] .ffly {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --surface-2: #383835;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --grid: #44443f;
  --bad: #e66767;
  --band: rgba(57, 135, 229, 0.22);
}
.ffly h1 { font-size: 22px; margin: 0 0 4px; }
.ffly h2 { font-size: 17px; margin: 28px 0 8px; }
.ffly .sub { color: var(--text-secondary); margin: 0 0 12px; }
.ffly .grid { display: flex; flex-wrap: wrap; gap: 16px; }
.ffly .card {
  background: var(--surface-1);
  border: 1px solid var(--grid);
  border-radius: 8px;
  padding: 12px 14px;
}
.ffly .card h3 { font-size: 14px; margin: 0 0 6px; }
.ffly table { border-collapse: collapse; margin: 8px 0; }
.ffly th, .ffly td {
  text-align: right;
  padding: 3px 10px;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
.ffly th { color: var(--text-secondary); font-weight: 600; }
.ffly th:first-child, .ffly td:first-child { text-align: left; }
.ffly .chip {
  display: inline-block;
  padding: 0 8px;
  border-radius: 9px;
  font-size: 12px;
  border: 1px solid var(--grid);
}
.ffly .chip.good { color: var(--good); border-color: var(--good); }
.ffly .chip.bad { color: var(--bad); border-color: var(--bad); }
.ffly .mono { font-family: ui-monospace, monospace; font-size: 12px; }
.ffly svg text { fill: var(--text-secondary); font-size: 10px; }
.ffly .note { color: var(--text-secondary); font-size: 12px; }
"""


def _esc(value) -> str:
    return _html.escape(str(value), quote=True)


def _fmt(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.0f}K"
    return f"{value:.3g}"


# ---------------------------------------------------------------------------
# SVG marks


def _line_chart(points: Sequence[Tuple[str, float]],
                band: Optional[Sequence[Tuple[float, float]]] = None,
                color: str = "var(--series)", width: int = 300,
                height: int = 110, unit: str = "") -> str:
    """One series as an SVG line with optional noise band.

    ``points`` are ``(x label, value)``; the y scale is anchored at
    zero so trajectory charts cannot exaggerate noise into drama.
    """
    if not points:
        return "<p class='note'>no data</p>"
    pad_l, pad_r, pad_t, pad_b = 42, 12, 8, 18
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    top = max(value for _, value in points)
    if band:
        top = max(top, max(hi for _, hi in band))
    top = top * 1.08 or 1.0

    def x_at(index: int) -> float:
        if len(points) == 1:
            return pad_l + plot_w / 2
        return pad_l + plot_w * index / (len(points) - 1)

    def y_at(value: float) -> float:
        return pad_t + plot_h * (1.0 - value / top)

    parts = [f"<svg viewBox='0 0 {width} {height}' width='{width}' "
             f"height='{height}' role='img'>"]
    # recessive grid: zero line + top gridline with its value
    parts.append(f"<line x1='{pad_l}' y1='{y_at(0):.1f}' "
                 f"x2='{width - pad_r}' y2='{y_at(0):.1f}' "
                 f"stroke='var(--grid)'/>")
    parts.append(f"<line x1='{pad_l}' y1='{pad_t}' "
                 f"x2='{width - pad_r}' y2='{pad_t}' "
                 f"stroke='var(--grid)' stroke-dasharray='2 3'/>")
    parts.append(f"<text x='{pad_l - 4}' y='{pad_t + 3}' "
                 f"text-anchor='end'>{_esc(_fmt(top))}</text>")
    parts.append(f"<text x='{pad_l - 4}' y='{y_at(0) + 3:.1f}' "
                 f"text-anchor='end'>0</text>")
    if band:
        upper = [f"{x_at(i):.1f},{y_at(hi):.1f}"
                 for i, (_lo, hi) in enumerate(band)]
        lower = [f"{x_at(i):.1f},{y_at(lo):.1f}"
                 for i, (lo, _hi) in reversed(list(enumerate(band)))]
        parts.append(f"<polygon points='{' '.join(upper + lower)}' "
                     f"fill='var(--band)' stroke='none'/>")
    path = " ".join(f"{x_at(i):.1f},{y_at(v):.1f}"
                    for i, (_, v) in enumerate(points))
    parts.append(f"<polyline points='{path}' fill='none' "
                 f"stroke='{color}' stroke-width='2' "
                 f"stroke-linejoin='round'/>")
    for i, (label, value) in enumerate(points):
        parts.append(
            f"<circle cx='{x_at(i):.1f}' cy='{y_at(value):.1f}' r='4' "
            f"fill='{color}'>"
            f"<title>{_esc(label)}: {_esc(_fmt(value))}{_esc(unit)}"
            f"</title></circle>")
        parts.append(f"<text x='{x_at(i):.1f}' y='{height - 4}' "
                     f"text-anchor='middle'>{_esc(label)}</text>")
    # selective direct label: last point only
    last_label, last_value = points[-1]
    parts.append(f"<text x='{x_at(len(points) - 1):.1f}' "
                 f"y='{y_at(last_value) - 7:.1f}' text-anchor='middle'>"
                 f"{_esc(_fmt(last_value))}{_esc(unit)}</text>")
    parts.append("</svg>")
    return "".join(parts)


def _series_style(index: int) -> str:
    """Per-card style block binding --series for light and dark."""
    light = _SERIES_LIGHT[index % len(_SERIES_LIGHT)]
    dark = _SERIES_DARK[index % len(_SERIES_DARK)]
    return (f"--series:{light};"
            f"--series-dark:{dark}")


# ---------------------------------------------------------------------------
# sections


def _section_trajectory(bench_docs: Sequence[Tuple[str, Dict]]) -> str:
    scenarios = sorted({name
                        for _, doc in bench_docs
                        for name in doc.get("scenarios", {})})
    if not scenarios:
        return "<p class='note'>no BENCH files found</p>"
    cards = []
    for index, scenario in enumerate(scenarios):
        points: List[Tuple[str, float]] = []
        band: List[Tuple[float, float]] = []
        rows = []
        for file_name, doc in bench_docs:
            entry = doc.get("scenarios", {}).get(scenario)
            if entry is None:
                continue
            median = entry["median_ticks_per_second"]
            noise = entry.get("noise", 0.0)
            label = file_name.replace("BENCH_", "").replace(".json", "")
            points.append((label, median))
            band.append((median * (1.0 - noise / 2.0),
                         median * (1.0 + noise / 2.0)))
            rows.append(f"<tr><td>{_esc(file_name)}</td>"
                        f"<td>{median:,.0f}</td>"
                        f"<td>{noise:.1%}</td>"
                        f"<td>{_esc(doc.get('mode', '?'))}</td></tr>")
        chart = _line_chart(points, band, color="var(--series)",
                            unit=" t/s")
        cards.append(
            f"<div class='card' style='{_series_style(index)}'>"
            f"<h3>{_esc(scenario)}</h3>{chart}"
            f"<details><summary class='note'>table</summary>"
            f"<table><tr><th>file</th><th>ticks/s</th><th>noise</th>"
            f"<th>mode</th></tr>{''.join(rows)}</table></details></div>")
    return "<div class='grid'>" + "".join(cards) + "</div>"


def _verdict_chip(status: str) -> str:
    if status == "regression":
        return "<span class='chip bad'>regression ▼</span>"
    if status == "improvement":
        return "<span class='chip good'>improvement ▲</span>"
    return "<span class='chip'>flat</span>"


def _section_verdicts(bench_docs: Sequence[Tuple[str, Dict]]) -> str:
    from repro.observatory.bench import compare_bench

    if len(bench_docs) < 2:
        return ("<p class='note'>fewer than two BENCH files — nothing "
                "to compare</p>")
    blocks = []
    for (prev_name, prev), (cur_name, cur) in zip(bench_docs,
                                                  bench_docs[1:]):
        report = compare_bench(prev, cur)
        rows = []
        for delta in report.deltas:
            rows.append(
                f"<tr><td>{_esc(delta.name)}</td>"
                f"<td>{delta.previous:,.0f}</td>"
                f"<td>{delta.current:,.0f}</td>"
                f"<td>{delta.ratio:.3f}×</td>"
                f"<td>{delta.margin:.0%}</td>"
                f"<td>{_verdict_chip(delta.status)}</td></tr>")
        note = ("<p class='note'>quick/full mode mismatch — not "
                "like-for-like</p>" if report.mode_mismatch else "")
        blocks.append(
            f"<h3 class='mono'>{_esc(prev_name)} → {_esc(cur_name)}"
            f"</h3>{note}<table><tr><th>scenario</th><th>prev t/s</th>"
            f"<th>cur t/s</th><th>ratio</th><th>margin</th>"
            f"<th>verdict</th></tr>{''.join(rows)}</table>")
    return "".join(blocks)


def _section_residuals(bench_docs: Sequence[Tuple[str, Dict]],
                       campaigns: Sequence[Tuple[str, List[Dict]]]) -> str:
    """§5.2 model residuals: measured bus load minus the prediction."""
    by_np: Dict[int, List[Tuple[str, float]]] = {}
    for file_name, doc in bench_docs:
        metrics = doc.get("scenarios", {}) \
            .get("table1-sweep", {}).get("metrics", {})
        for key, value in sorted(metrics.items()):
            if key.startswith("np") and key.endswith(".load_residual"):
                processors = int(key[2:key.index(".")])
                label = file_name.replace("BENCH_", "") \
                    .replace(".json", "")
                by_np.setdefault(processors, []).append((label, value))
    rows = []
    for processors in sorted(by_np):
        cells = "".join(f"<td>{value:+.4f}</td>"
                        for _, value in by_np[processors])
        rows.append(f"<tr><td>{processors} CPU(s)</td>{cells}</tr>")
    parts = []
    if rows:
        heads = "".join(f"<th>{_esc(label)}</th>"
                        for label, _ in by_np[min(by_np)])
        parts.append(
            "<p class='sub'>measured bus load − analytic prediction at "
            "the Table 1 operating points; positive means the model "
            "underpredicts (the paper's §5.2 story)</p>"
            f"<table><tr><th></th>{heads}</tr>{''.join(rows)}</table>")
    sweep_rows = [
        f"<tr><td>{_esc(name)}</td><td>{_esc(row['label'])}</td>"
        f"<td>{row['result'].get('bus_load', 0.0):.4f}</td>"
        f"<td>{row['result'].get('mean_tpi', 0.0):.3f}</td>"
        f"<td>{row['result'].get('mean_miss_rate', 0.0):.4f}</td></tr>"
        for name, ledger_rows in campaigns
        for row in ledger_rows if row.get("kind") == "sweep"]
    if sweep_rows:
        parts.append(
            "<h3>campaign sweep points</h3><table><tr><th>campaign</th>"
            "<th>trial</th><th>bus load</th><th>TPI</th>"
            "<th>miss rate</th></tr>" + "".join(sweep_rows) + "</table>")
    return "".join(parts) or "<p class='note'>no residual data</p>"


def _section_chaos(campaigns: Sequence[Tuple[str, List[Dict]]]) -> str:
    rows = []
    for name, ledger_rows in campaigns:
        for row in ledger_rows:
            if row.get("kind") != "chaos":
                continue
            result = row.get("result", {})
            verdict = result.get("verdict", "?")
            chip = ("<span class='chip good'>OK</span>"
                    if verdict == "OK"
                    else f"<span class='chip bad'>{_esc(verdict)}</span>")
            for fault in result.get("faults", []):
                injected = fault.get("injected_at")
                detected = fault.get("detected_at")
                recovered = fault.get("recovered_at")
                detect = (detected - injected
                          if None not in (injected, detected) else None)
                recover = (recovered - detected
                           if None not in (detected, recovered) else None)
                rows.append(
                    f"<tr><td>{_esc(name)}</td>"
                    f"<td>{_esc(row.get('label', '?'))}</td>"
                    f"<td>{_esc(fault.get('kind', '?'))}</td>"
                    f"<td>{injected if injected is not None else '—'}</td>"
                    f"<td>{detect if detect is not None else '—'}</td>"
                    f"<td>{recover if recover is not None else '—'}</td>"
                    f"<td>{_esc(fault.get('outcome', '?'))}</td>"
                    f"<td>{chip}</td></tr>")
    if not rows:
        return ("<p class='note'>no chaos trials in the campaign "
                "ledgers</p>")
    return ("<p class='sub'>per injected fault: cycles to detect and "
            "to recover (simulated time)</p>"
            "<table><tr><th>campaign</th><th>scenario</th>"
            "<th>fault</th><th>injected@</th><th>detect</th>"
            "<th>recover</th><th>outcome</th><th>verdict</th></tr>"
            + "".join(rows) + "</table>")


def _section_observability(bench_docs: Sequence[Tuple[str, Dict]],
                           campaigns: Sequence[Tuple[str, List[Dict]]]
                           ) -> str:
    """Observability health: overhead gates and ring-drop counters.

    Per BENCH file, the disabled-tracing and flight-recorder wall-clock
    ratios against their budgets; per chaos trial that captured a crash
    report, the recorder's ring counters (recorded / kept / aged out) —
    the bounded buffers' ``dropped`` counters made visible instead of
    silently overwriting.
    """
    parts = []
    rows = []
    for file_name, doc in bench_docs:
        overhead = doc.get("overhead")
        if not isinstance(overhead, dict):
            continue

        def _ratio_cell(ratio, budget):
            if ratio is None:
                return "<td>—</td><td></td>"
            chip = ("<span class='chip good'>OK</span>"
                    if ratio <= 1.0 + (budget or 0)
                    else "<span class='chip bad'>over</span>")
            return f"<td>{(ratio - 1.0) * 100:+.1f}%</td><td>{chip}</td>"

        rows.append(
            f"<tr><td class='mono'>{_esc(file_name)}</td>"
            + _ratio_cell(overhead.get("disabled_ratio"),
                          overhead.get("budget"))
            + _ratio_cell(overhead.get("recorder_ratio"),
                          overhead.get("recorder_budget"))
            + "</tr>")
    if rows:
        parts.append(
            "<p class='sub'>wall-clock cost of the probe layer: "
            "disabled tracing and the always-on flight recorder, each "
            "gated at its budget</p>"
            "<table><tr><th>BENCH file</th><th>disabled</th><th></th>"
            "<th>recorder</th><th></th></tr>" + "".join(rows)
            + "</table>")

    drop_rows = []
    for name, ledger_rows in campaigns:
        for row in ledger_rows:
            crash = (row.get("result") or {}).get("crash") \
                if isinstance(row.get("result"), dict) else None
            if not crash:
                continue
            counters = crash.get("recorder") or {}
            drop_rows.append(
                f"<tr><td>{_esc(name)}</td>"
                f"<td>{_esc(row.get('label', '?'))}</td>"
                f"<td>{counters.get('recorded', '—')}</td>"
                f"<td>{counters.get('kept', '—')}</td>"
                f"<td>{counters.get('dropped', '—')}</td></tr>")
    if drop_rows:
        parts.append(
            "<h3>captured crash reports</h3>"
            "<p class='sub'>flight-recorder ring counters at capture "
            "time (render with <span class='mono'>firefly-sim "
            "postmortem</span>)</p>"
            "<table><tr><th>campaign</th><th>trial</th>"
            "<th>recorded</th><th>kept</th><th>aged out</th></tr>"
            + "".join(drop_rows) + "</table>")
    return "".join(parts) or ("<p class='note'>no overhead blocks or "
                              "crash reports yet</p>")


def _section_campaigns(campaigns: Sequence[Tuple[str, List[Dict]]]) -> str:
    if not campaigns:
        return "<p class='note'>no campaign ledgers in the store</p>"
    blocks = []
    for name, ledger_rows in campaigns:
        counts: Dict[str, int] = {}
        shas = sorted({str(row.get("git_sha"))[:12]
                       for row in ledger_rows if row.get("git_sha")})
        for row in ledger_rows:
            counts[row.get("kind", "?")] = \
                counts.get(row.get("kind", "?"), 0) + 1
        summary = ", ".join(f"{counts[kind]} {kind}"
                            for kind in sorted(counts)) or "empty"
        blocks.append(
            f"<div class='card'><h3>{_esc(name)}</h3>"
            f"<p class='sub'>{len(ledger_rows)} completed trial(s): "
            f"{_esc(summary)}</p>"
            f"<p class='note mono'>git {_esc(', '.join(shas) or '?')}"
            f"</p></div>")
    return "<div class='grid'>" + "".join(blocks) + "</div>"


# ---------------------------------------------------------------------------
# the document


def render_dashboard(bench_docs: Sequence[Tuple[str, Dict]],
                     campaigns: Sequence[Tuple[str, List[Dict]]] = (),
                     title: str = "Firefly regression observatory"
                     ) -> str:
    """The full dashboard HTML.

    ``bench_docs`` are ``(file name, loaded BENCH document)`` in
    trajectory order; ``campaigns`` are ``(campaign name, ledger
    rows)``.  Output is deterministic for identical inputs.
    """
    bench_docs = list(bench_docs)
    campaigns = list(campaigns)
    shas = sorted({str(doc.get("provenance", {}).get("git_sha"))[:12]
                   for _, doc in bench_docs
                   if isinstance(doc.get("provenance"), dict)
                   and doc["provenance"].get("git_sha")})
    provenance = (f"revisions {', '.join(shas)}" if shas
                  else "no provenance stamps (pre-PR-6 BENCH files)")
    # --series-dark swap: cards set both custom properties; dark mode
    # re-points --series at the dark step.
    dark_swap = ("@media (prefers-color-scheme: dark) {"
                 " :root:where(:not([data-theme=\"light\"]))"
                 " .ffly .card { --series: var(--series-dark); } }\n"
                 ":root[data-theme=\"dark\"] .ffly .card"
                 " { --series: var(--series-dark); }")
    sections = [
        f"<h1>{_esc(title)}</h1>",
        f"<p class='sub'>{len(bench_docs)} BENCH file(s), "
        f"{len(campaigns)} campaign ledger(s) · {_esc(provenance)}</p>",
        "<h2>Performance trajectory (median ticks/s per scenario)</h2>",
        _section_trajectory(bench_docs),
        "<h2>Regression verdicts (noise-aware)</h2>",
        _section_verdicts(bench_docs),
        "<h2>Analytic-model divergence</h2>",
        _section_residuals(bench_docs, campaigns),
        "<h2>Chaos recovery ledger</h2>",
        _section_chaos(campaigns),
        "<h2>Observability health</h2>",
        _section_observability(bench_docs, campaigns),
        "<h2>Campaigns</h2>",
        _section_campaigns(campaigns),
    ]
    return ("<!DOCTYPE html>\n<html lang='en'>\n<head>\n"
            "<meta charset='utf-8'>\n"
            "<meta name='viewport' "
            "content='width=device-width, initial-scale=1'>\n"
            f"<title>{_esc(title)}</title>\n"
            f"<style>{_CSS}{dark_swap}</style>\n"
            "</head>\n<body class='ffly'>\n"
            + "\n".join(sections)
            + "\n</body>\n</html>\n")
