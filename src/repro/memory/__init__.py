"""Main-memory models: module array plus word-granularity backing store."""

from repro.memory.main_memory import MainMemory, MemoryModule

__all__ = ["MainMemory", "MemoryModule"]
