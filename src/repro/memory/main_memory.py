"""Main memory: master/slave storage modules on the MBus.

The original Firefly packaged memory as one master 4 MB module plus up
to three 4 MB slaves (16 MB total); the CVAX version uses 32 MB modules
up to 128 MB.  Capacity mattered to the paper (§3 calls the 16 MB limit
"potentially more serious than asymmetric I/O"), so the model keeps the
module structure and address-range checking rather than a flat array.

Data is stored at longword granularity in a sparse dict, because the
coherence checker needs real values: every CPU write stores a unique
token, and the checker verifies that what a CPU reads is exactly the
value the coherent history implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import (
    ConfigurationError,
    SimulationError,
    UncorrectableMemoryError,
)
from repro.common.stats import StatSet

LineData = Tuple[int, ...]

MEGABYTE_WORDS = (1024 * 1024) // 4
"""Longwords per megabyte."""


@dataclass(frozen=True)
class MemoryModule:
    """One storage board: a contiguous word-address range.

    ``is_master`` marks the module that carries the bus termination and
    initialisation logic in the real machine; the distinction is kept
    for the Figure 1 inventory rendering.
    """

    base_word: int
    size_words: int
    is_master: bool = False

    def __post_init__(self) -> None:
        if self.base_word < 0 or self.size_words <= 0:
            raise ConfigurationError(
                f"invalid module range base={self.base_word} "
                f"size={self.size_words}")

    @property
    def end_word(self) -> int:
        return self.base_word + self.size_words

    @property
    def size_megabytes(self) -> float:
        return self.size_words * 4 / (1024 * 1024)

    def covers(self, word_address: int) -> bool:
        return self.base_word <= word_address < self.end_word


class MainMemory:
    """The module array visible on the MBus.

    Implements the bus's ``MemoryPort``: line reads and writes, with
    range checking against the installed modules.  Reads of never-
    written words return 0 (DRAM after initialisation).
    """

    __slots__ = ("modules", "words_per_line", "_store", "stats", "_flipped",
                 "_poisoned", "_poison_bits", "on_ecc",
                 "_lo", "_hi", "_contiguous", "_c_reads", "_c_writes")

    def __init__(self, modules: List[MemoryModule], words_per_line: int = 1) -> None:
        if not modules:
            raise ConfigurationError("at least one memory module is required")
        if sum(1 for m in modules if m.is_master) != 1:
            raise ConfigurationError("exactly one module must be the master")
        ordered = sorted(modules, key=lambda m: m.base_word)
        for low, high in zip(ordered, ordered[1:]):
            if low.end_word > high.base_word:
                raise ConfigurationError(
                    f"memory modules overlap at word {high.base_word:#x}")
        if words_per_line < 1:
            raise ConfigurationError(
                f"words_per_line must be >= 1, got {words_per_line}")
        self.modules = tuple(ordered)
        self.words_per_line = words_per_line
        self._store: Dict[int, int] = {}
        self.stats = StatSet("memory")
        # Standard configurations install contiguous modules, letting
        # the per-access decode be one range compare instead of a scan.
        self._lo = ordered[0].base_word
        self._hi = ordered[-1].end_word
        self._contiguous = all(
            low.end_word == high.base_word
            for low, high in zip(ordered, ordered[1:]))
        # Bound lazily on first use: ``peek``/``poke`` must leave the
        # stat set empty (tests assert the bypass via membership).
        self._c_reads = None
        self._c_writes = None
        # SECDED ECC model.  ``_flipped`` maps word address -> number of
        # flipped bits for words whose stored value currently disagrees
        # with what was written; empty in fault-free runs, so the hot
        # read/write paths pay one truthiness test and nothing more.
        self._flipped: Dict[int, int] = {}
        self._poisoned: set = set()
        self._poison_bits: Dict[int, int] = {}
        #: Optional ``f(word_address, bits, outcome)`` called on every
        #: ECC event; ``outcome`` is "corrected" or "uncorrectable".
        #: The fault injector hangs detection bookkeeping here.
        self.on_ecc: Optional[Callable[[int, int, str], None]] = None

    @classmethod
    def standard_microvax(cls, megabytes: int = 16,
                          words_per_line: int = 1) -> "MainMemory":
        """The original configuration: one 4 MB master + 4 MB slaves."""
        if megabytes % 4 != 0 or not 4 <= megabytes <= 16:
            raise ConfigurationError(
                f"MicroVAX Firefly memory must be 4-16 MB in 4 MB modules, "
                f"got {megabytes}")
        modules = [
            MemoryModule(i * 4 * MEGABYTE_WORDS, 4 * MEGABYTE_WORDS,
                         is_master=(i == 0))
            for i in range(megabytes // 4)
        ]
        return cls(modules, words_per_line)

    @classmethod
    def standard_cvax(cls, megabytes: int = 32,
                      words_per_line: int = 1) -> "MainMemory":
        """The CVAX configuration: 32 MB modules, up to 128 MB."""
        if megabytes % 32 != 0 or not 32 <= megabytes <= 128:
            raise ConfigurationError(
                f"CVAX Firefly memory must be 32-128 MB in 32 MB modules, "
                f"got {megabytes}")
        modules = [
            MemoryModule(i * 32 * MEGABYTE_WORDS, 32 * MEGABYTE_WORDS,
                         is_master=(i == 0))
            for i in range(megabytes // 32)
        ]
        return cls(modules, words_per_line)

    # -- MemoryPort -------------------------------------------------------

    def covers(self, word_address: int) -> bool:
        """Whether any installed module decodes this word address."""
        if self._contiguous:
            return self._lo <= word_address < self._hi
        return any(m.covers(word_address) for m in self.modules)

    def read_line(self, line_address: int) -> LineData:
        """Supply a line during an MRead's data cycle.

        Every word passes through the SECDED check: a single-bit flip
        is corrected on the fly (counted, invisible to the initiator);
        a multi-bit flip raises :class:`UncorrectableMemoryError`.
        """
        self._check_range(line_address)
        counter = self._c_reads
        if counter is None:
            counter = self._c_reads = self.stats.counter("reads")
        counter.add()
        if self._flipped or self._poisoned:
            for i in range(self.words_per_line):
                self._ecc_check(line_address + i)
        if self.words_per_line == 1:
            return (self._store.get(line_address, 0),)
        return tuple(self._store.get(line_address + i, 0)
                     for i in range(self.words_per_line))

    def write_line(self, line_address: int, data: LineData) -> None:
        """Absorb an MWrite (write-through or victim write)."""
        self._check_range(line_address)
        if len(data) != self.words_per_line:
            raise SimulationError(
                f"write of {len(data)} words to {self.words_per_line}-word line")
        counter = self._c_writes
        if counter is None:
            counter = self._c_writes = self.stats.counter("writes")
        counter.add()
        if self.words_per_line == 1 and not (self._flipped or self._poisoned):
            self._store[line_address] = data[0]
            return
        for i, value in enumerate(data):
            address = line_address + i
            self._store[address] = value
            if self._flipped or self._poisoned:
                # A full-word rewrite stores fresh data + fresh check
                # bits, clearing any latent error at the cell.
                self._flipped.pop(address, None)
                self._poisoned.discard(address)

    # -- SECDED ECC model ---------------------------------------------------

    def inject_bit_flips(self, word_address: int, bits: int) -> None:
        """Flip ``bits`` stored bits of one word (fault injection).

        The model tracks the flip count rather than a literal bit mask:
        SECDED behaviour depends only on how many bits differ (1 =
        correctable, >=2 = detectable but uncorrectable), and keeping
        the true value in ``_store`` means correction is exact.
        """
        if bits < 1:
            raise ConfigurationError(f"bit flips must be >= 1, got {bits}")
        if not self.covers(word_address):
            raise SimulationError(
                f"cannot flip bits at {word_address:#x}: no module decodes "
                f"that address")
        self._flipped[word_address] = self._flipped.get(word_address, 0) + bits
        self.stats.incr("ecc.injected_flips", bits)

    def _ecc_check(self, address: int) -> None:
        """Run one word through the SECDED syndrome logic."""
        if address in self._poisoned:
            raise UncorrectableMemoryError(address, self._poison_bits[address])
        bits = self._flipped.get(address)
        if bits is None:
            return
        if bits == 1:
            del self._flipped[address]
            self.stats.incr("ecc.corrected")
            if self.on_ecc is not None:
                self.on_ecc(address, bits, "corrected")
            return
        # Detected-but-uncorrectable: poison the frame so every access
        # keeps failing until fresh data is written over it.
        del self._flipped[address]
        self._poisoned.add(address)
        self._poison_bits[address] = bits
        self.stats.incr("ecc.uncorrectable")
        if self.on_ecc is not None:
            self.on_ecc(address, bits, "uncorrectable")
        raise UncorrectableMemoryError(address, bits)

    def scrub(self) -> Tuple[int, int]:
        """One pass of the background memory scrubber.

        Walks every latent error, correcting single-bit flips and
        poisoning (without raising) multi-bit ones — the scrubber reads
        on its own behalf, so nobody consumes the bad data.  Returns
        ``(corrected, uncorrectable)`` counts for this pass.
        """
        corrected = uncorrectable = 0
        for address in sorted(self._flipped):
            bits = self._flipped.pop(address)
            if bits == 1:
                corrected += 1
                self.stats.incr("ecc.corrected")
                if self.on_ecc is not None:
                    self.on_ecc(address, bits, "corrected")
            else:
                uncorrectable += 1
                self._poisoned.add(address)
                self._poison_bits[address] = bits
                self.stats.incr("ecc.uncorrectable")
                if self.on_ecc is not None:
                    self.on_ecc(address, bits, "uncorrectable")
        if corrected or uncorrectable:
            self.stats.incr("ecc.scrub_passes")
        return corrected, uncorrectable

    @property
    def latent_errors(self) -> int:
        """Words currently holding undetected flips or poisoned frames."""
        return len(self._flipped) + len(self._poisoned)

    # -- direct inspection (checker / tests) -------------------------------

    def peek(self, word_address: int) -> int:
        """Read a word without touching statistics (checker use only)."""
        return self._store.get(word_address, 0)

    def poke(self, word_address: int, value: int) -> None:
        """Write a word without bus traffic (initialisation/tests only).

        Word-granularity: no line-alignment requirement.
        """
        if not self.covers(word_address):
            raise SimulationError(
                f"word address {word_address:#x} decodes to no memory "
                f"module (installed: {self.total_megabytes:.0f} MB)")
        self._store[word_address] = value
        if self._flipped or self._poisoned:
            self._flipped.pop(word_address, None)
            self._poisoned.discard(word_address)

    @property
    def total_words(self) -> int:
        return sum(m.size_words for m in self.modules)

    @property
    def total_megabytes(self) -> float:
        return self.total_words * 4 / (1024 * 1024)

    def _check_range(self, line_address: int) -> None:
        wpl = self.words_per_line
        if wpl != 1 and line_address % wpl != 0:
            raise SimulationError(f"unaligned line address {line_address:#x}")
        if not self.covers(line_address):
            raise SimulationError(
                f"word address {line_address:#x} decodes to no memory module "
                f"(installed: {self.total_megabytes:.0f} MB)")
