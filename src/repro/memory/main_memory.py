"""Main memory: master/slave storage modules on the MBus.

The original Firefly packaged memory as one master 4 MB module plus up
to three 4 MB slaves (16 MB total); the CVAX version uses 32 MB modules
up to 128 MB.  Capacity mattered to the paper (§3 calls the 16 MB limit
"potentially more serious than asymmetric I/O"), so the model keeps the
module structure and address-range checking rather than a flat array.

Data is stored at longword granularity in a sparse dict, because the
coherence checker needs real values: every CPU write stores a unique
token, and the checker verifies that what a CPU reads is exactly the
value the coherent history implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.stats import StatSet

LineData = Tuple[int, ...]

MEGABYTE_WORDS = (1024 * 1024) // 4
"""Longwords per megabyte."""


@dataclass(frozen=True)
class MemoryModule:
    """One storage board: a contiguous word-address range.

    ``is_master`` marks the module that carries the bus termination and
    initialisation logic in the real machine; the distinction is kept
    for the Figure 1 inventory rendering.
    """

    base_word: int
    size_words: int
    is_master: bool = False

    def __post_init__(self) -> None:
        if self.base_word < 0 or self.size_words <= 0:
            raise ConfigurationError(
                f"invalid module range base={self.base_word} "
                f"size={self.size_words}")

    @property
    def end_word(self) -> int:
        return self.base_word + self.size_words

    @property
    def size_megabytes(self) -> float:
        return self.size_words * 4 / (1024 * 1024)

    def covers(self, word_address: int) -> bool:
        return self.base_word <= word_address < self.end_word


class MainMemory:
    """The module array visible on the MBus.

    Implements the bus's ``MemoryPort``: line reads and writes, with
    range checking against the installed modules.  Reads of never-
    written words return 0 (DRAM after initialisation).
    """

    def __init__(self, modules: List[MemoryModule], words_per_line: int = 1) -> None:
        if not modules:
            raise ConfigurationError("at least one memory module is required")
        if sum(1 for m in modules if m.is_master) != 1:
            raise ConfigurationError("exactly one module must be the master")
        ordered = sorted(modules, key=lambda m: m.base_word)
        for low, high in zip(ordered, ordered[1:]):
            if low.end_word > high.base_word:
                raise ConfigurationError(
                    f"memory modules overlap at word {high.base_word:#x}")
        if words_per_line < 1:
            raise ConfigurationError(
                f"words_per_line must be >= 1, got {words_per_line}")
        self.modules = tuple(ordered)
        self.words_per_line = words_per_line
        self._store: Dict[int, int] = {}
        self.stats = StatSet("memory")

    @classmethod
    def standard_microvax(cls, megabytes: int = 16,
                          words_per_line: int = 1) -> "MainMemory":
        """The original configuration: one 4 MB master + 4 MB slaves."""
        if megabytes % 4 != 0 or not 4 <= megabytes <= 16:
            raise ConfigurationError(
                f"MicroVAX Firefly memory must be 4-16 MB in 4 MB modules, "
                f"got {megabytes}")
        modules = [
            MemoryModule(i * 4 * MEGABYTE_WORDS, 4 * MEGABYTE_WORDS,
                         is_master=(i == 0))
            for i in range(megabytes // 4)
        ]
        return cls(modules, words_per_line)

    @classmethod
    def standard_cvax(cls, megabytes: int = 32,
                      words_per_line: int = 1) -> "MainMemory":
        """The CVAX configuration: 32 MB modules, up to 128 MB."""
        if megabytes % 32 != 0 or not 32 <= megabytes <= 128:
            raise ConfigurationError(
                f"CVAX Firefly memory must be 32-128 MB in 32 MB modules, "
                f"got {megabytes}")
        modules = [
            MemoryModule(i * 32 * MEGABYTE_WORDS, 32 * MEGABYTE_WORDS,
                         is_master=(i == 0))
            for i in range(megabytes // 32)
        ]
        return cls(modules, words_per_line)

    # -- MemoryPort -------------------------------------------------------

    def covers(self, word_address: int) -> bool:
        """Whether any installed module decodes this word address."""
        return any(m.covers(word_address) for m in self.modules)

    def read_line(self, line_address: int) -> LineData:
        """Supply a line during an MRead's data cycle."""
        self._check_range(line_address)
        self.stats.incr("reads")
        return tuple(self._store.get(line_address + i, 0)
                     for i in range(self.words_per_line))

    def write_line(self, line_address: int, data: LineData) -> None:
        """Absorb an MWrite (write-through or victim write)."""
        self._check_range(line_address)
        if len(data) != self.words_per_line:
            raise SimulationError(
                f"write of {len(data)} words to {self.words_per_line}-word line")
        self.stats.incr("writes")
        for i, value in enumerate(data):
            self._store[line_address + i] = value

    # -- direct inspection (checker / tests) -------------------------------

    def peek(self, word_address: int) -> int:
        """Read a word without touching statistics (checker use only)."""
        return self._store.get(word_address, 0)

    def poke(self, word_address: int, value: int) -> None:
        """Write a word without bus traffic (initialisation/tests only).

        Word-granularity: no line-alignment requirement.
        """
        if not self.covers(word_address):
            raise SimulationError(
                f"word address {word_address:#x} decodes to no memory "
                f"module (installed: {self.total_megabytes:.0f} MB)")
        self._store[word_address] = value

    @property
    def total_words(self) -> int:
        return sum(m.size_words for m in self.modules)

    @property
    def total_megabytes(self) -> float:
        return self.total_words * 4 / (1024 * 1024)

    def _check_range(self, line_address: int) -> None:
        if line_address % self.words_per_line != 0:
            raise SimulationError(f"unaligned line address {line_address:#x}")
        if not self.covers(line_address):
            raise SimulationError(
                f"word address {line_address:#x} decodes to no memory module "
                f"(installed: {self.total_megabytes:.0f} MB)")
