"""The Firefly analytic performance model (paper §5.2, Table 1).

The paper models the MBus and storage as an open queueing network: an
operation issued when the bus is at load ``L`` takes ``N/(1-L)`` ticks
(N = 2 ticks per MBus operation).  Three effects then raise a
processor's ticks-per-instruction above the 11.9 base:

- **SM**, misses: ``TR * M * (1+D) * N/(1-L)`` — each miss costs one
  bus read, plus a victim write for the dirty fraction D of victims;
- **SW**, write-through: ``DW * S * N/(1-L)`` — the fraction S of
  writes that touch shared data write through;
- **SP**, tag-store probes: ``TR * (1-M) * (1/N) * L`` — a cache hit
  loses a tick when an MBus operation probes the tag store in the same
  cycle.

So ``TPI(L) = 11.9 + SM + SW + SP``, relative per-processor performance
``RP = 11.9 / TPI``, and the number of processors that produces load L
is ``NP = (L/N) / ((M*TR*(1+D) + DW*S) / TPI)``.  Total performance is
``TP = NP * RP``.  With the paper's parameters the constants are
``SM = 1.065/(1-L)``, ``SW = 0.08/(1-L)``, ``NP = L*TPI/1.145``.

The model is *open* (unbounded queue) and therefore slightly
pessimistic at high load; the paper calls the accuracy "slide-rule"
and we reproduce it exactly, inverting NP(L) numerically to regenerate
Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.errors import ConfigurationError
from repro.processor.mix import VAX_MIX, ReferenceMix


@dataclass(frozen=True)
class AnalyticParameters:
    """Inputs to the model; defaults are the paper's values."""

    mix: ReferenceMix = VAX_MIX
    base_tpi: float = 11.9
    miss_rate: float = 0.2
    dirty_fraction: float = 0.25
    shared_write_fraction: float = 0.1
    bus_op_ticks: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.miss_rate < 1.0:
            raise ConfigurationError(f"miss rate must be in (0,1)")
        if not 0.0 <= self.dirty_fraction <= 1.0:
            raise ConfigurationError("dirty fraction must be in [0,1]")
        if not 0.0 <= self.shared_write_fraction <= 1.0:
            raise ConfigurationError("shared write fraction must be in [0,1]")
        if self.base_tpi <= 0 or self.bus_op_ticks <= 0:
            raise ConfigurationError("base TPI and bus ticks must be positive")

    @property
    def bus_ops_per_instruction(self) -> float:
        """MBus operations per instruction: misses + victims + w-through."""
        mix = self.mix
        return (self.miss_rate * mix.total * (1.0 + self.dirty_fraction)
                + mix.data_writes * self.shared_write_fraction)

    @property
    def np_denominator(self) -> float:
        """The paper's 1.145: ``N * (M*TR*(1+D) + DW*S)``."""
        return self.bus_op_ticks * self.bus_ops_per_instruction


@dataclass(frozen=True)
class OperatingPoint:
    """One column of Table 1."""

    processors: float
    load: float
    tpi: float
    relative_performance: float
    total_performance: float


class FireflyAnalyticModel:
    """Evaluate and invert the paper's queueing model."""

    def __init__(self, params: AnalyticParameters = AnalyticParameters()) -> None:
        self.params = params

    # -- the forward formulas -------------------------------------------

    def stall_misses(self, load: float) -> float:
        """SM: added ticks per instruction due to misses + victims."""
        p = self.params
        return (p.mix.total * p.miss_rate * (1.0 + p.dirty_fraction)
                * p.bus_op_ticks / (1.0 - load))

    def stall_write_through(self, load: float) -> float:
        """SW: added ticks per instruction due to shared write-throughs."""
        p = self.params
        return (p.mix.data_writes * p.shared_write_fraction
                * p.bus_op_ticks / (1.0 - load))

    def stall_probes(self, load: float) -> float:
        """SP: added ticks per instruction due to tag-store contention."""
        p = self.params
        return p.mix.total * (1.0 - p.miss_rate) * load / p.bus_op_ticks

    def tpi(self, load: float) -> float:
        """Ticks per instruction at bus load ``load``."""
        self._check_load(load)
        return (self.params.base_tpi + self.stall_misses(load)
                + self.stall_write_through(load) + self.stall_probes(load))

    def relative_performance(self, load: float) -> float:
        """RP: one processor's speed relative to no-wait-state memory."""
        return self.params.base_tpi / self.tpi(load)

    def processors_for_load(self, load: float) -> float:
        """NP: how many processors produce the given bus load."""
        self._check_load(load)
        return load * self.tpi(load) / self.params.np_denominator

    def total_performance(self, load: float) -> float:
        """TP: system performance relative to one no-wait processor."""
        return self.processors_for_load(load) * self.relative_performance(load)

    # -- inversion -----------------------------------------------------------

    def load_for_processors(self, processors: float,
                            tolerance: float = 1e-10) -> float:
        """Solve NP(L) = processors for L by bisection.

        NP(L) is strictly increasing on (0, 1): more load can only be
        generated by more processors.
        """
        if processors <= 0:
            raise ConfigurationError("processor count must be positive")
        low, high = 0.0, 1.0 - 1e-12
        if self.processors_for_load(high) < processors:
            raise ConfigurationError(
                f"{processors} processors exceed what the bus can absorb")
        for _ in range(200):
            mid = (low + high) / 2.0
            if high - low < tolerance:
                break
            if self.processors_for_load(mid) < processors:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0

    def operating_point(self, processors: float) -> OperatingPoint:
        """The full Table 1 column for a processor count."""
        load = self.load_for_processors(processors)
        return OperatingPoint(
            processors=processors,
            load=load,
            tpi=self.tpi(load),
            relative_performance=self.relative_performance(load),
            total_performance=processors * self.relative_performance(load),
        )

    def table1(self, processor_counts: Sequence[int] = (2, 4, 6, 8, 10, 12)
               ) -> List[OperatingPoint]:
        """Regenerate Table 1 (NP = 2, 4, ..., 12 by default)."""
        return [self.operating_point(np) for np in processor_counts]

    def knee_processors(self, marginal_gain: float = 0.5) -> int:
        """Largest NP whose marginal TP gain still exceeds the threshold.

        The paper: "the Firefly MBus can support perhaps nine
        processors before the marginal improvement achieved by adding
        another processor becomes unattractive."
        """
        if not 0.0 < marginal_gain < 1.0:
            raise ConfigurationError("marginal gain must be in (0,1)")
        previous = self.operating_point(1).total_performance
        np = 1
        while True:
            np += 1
            try:
                current = self.operating_point(np).total_performance
            except ConfigurationError:
                return np - 1
            if current - previous < marginal_gain:
                return np - 1
            previous = current

    @staticmethod
    def _check_load(load: float) -> None:
        if not 0.0 <= load < 1.0:
            raise ConfigurationError(f"bus load must be in [0,1), got {load}")


PAPER_TABLE_1 = {
    2: OperatingPoint(2, 0.17, 13.4, 0.89, 1.77),
    4: OperatingPoint(4, 0.33, 13.9, 0.85, 3.43),
    6: OperatingPoint(6, 0.47, 14.5, 0.82, 4.93),
    8: OperatingPoint(8, 0.60, 15.3, 0.78, 6.23),
    10: OperatingPoint(10, 0.70, 16.3, 0.72, 7.29),
    12: OperatingPoint(12, 0.78, 17.7, 0.67, 8.07),
}
"""Table 1 as printed (NP=2's L and TPI are illegible in the scanned
copy; 0.17/13.4 are the values the printed RP/TP imply)."""
