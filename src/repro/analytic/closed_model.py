"""A closed queueing model of the MBus — the paper's acknowledged gap.

Paper §5.2, on the open-network approximation ``N/(1-L)``: "This is
not accurate at high loads, since the number of caches requesting
service is bounded, but it is fairly accurate at the moderate loads at
which the system actually operates."

This module supplies the bounded-population model the paper skipped: a
machine-repairman network solved by exact Mean Value Analysis (MVA).
Each of NP processors alternates *thinking* (executing instructions
that hit in its cache) and *requesting* one MBus operation:

- think time per visit  ``Z = base_cycles / ops_per_instruction``
  (how long a processor computes, on average, between bus operations);
- service time          ``S = one bus operation`` (2 ticks);
- MVA recursion over population k = 1..NP:
  ``R_k = S * (1 + Q_{k-1})``, ``X_k = k / (Z + R_k)``,
  ``Q_k = X_k * R_k``.

From the solved throughput: bus load ``L = X * S``, per-processor TPI
(base plus bus residence per instruction plus the same SP tag-probe
term the open model uses), RP and TP.  At low load the two models
agree; at high processor counts the closed model's queues saturate
gracefully instead of diverging — and it lands closer to the cycle
simulator (bench A11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analytic.queueing import AnalyticParameters, OperatingPoint
from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class MvaSolution:
    """The solved closed network at one population."""

    processors: int
    throughput_ops_per_tick: float
    residence_ticks: float
    queue_length: float

    @property
    def load(self) -> float:
        return self.throughput_ops_per_tick  # x S, with S folded below


class ClosedFireflyModel:
    """Exact MVA for the bounded-population Firefly bus."""

    def __init__(self,
                 params: AnalyticParameters = AnalyticParameters()) -> None:
        self.params = params

    @property
    def ops_per_instruction(self) -> float:
        return self.params.bus_ops_per_instruction

    @property
    def think_ticks(self) -> float:
        """Mean execution ticks between consecutive bus operations."""
        return self.params.base_tpi / self.ops_per_instruction

    @property
    def service_ticks(self) -> float:
        return float(self.params.bus_op_ticks)

    def solve(self, processors: int) -> MvaSolution:
        """Exact MVA over populations 1..processors."""
        if processors < 1:
            raise ConfigurationError("need at least one processor")
        z = self.think_ticks
        s = self.service_ticks
        queue = 0.0
        throughput = 0.0
        residence = s
        for k in range(1, processors + 1):
            residence = s * (1.0 + queue)
            throughput = k / (z + residence)
            queue = throughput * residence
        return MvaSolution(
            processors=processors,
            throughput_ops_per_tick=throughput,
            residence_ticks=residence,
            queue_length=queue)

    def operating_point(self, processors: int) -> OperatingPoint:
        """The Table 1 quantities under the closed model."""
        solution = self.solve(processors)
        params = self.params
        load = solution.throughput_ops_per_tick * self.service_ticks
        # TPI: base execution, plus bus residence for each of the
        # instruction's bus operations, plus the open model's SP
        # tag-probe term (probes depend on load, not on queueing
        # discipline).
        sp = (params.mix.total * (1.0 - params.miss_rate)
              * load / params.bus_op_ticks)
        tpi = (params.base_tpi
               + self.ops_per_instruction * solution.residence_ticks
               + sp)
        rp = params.base_tpi / tpi
        return OperatingPoint(
            processors=processors,
            load=load,
            tpi=tpi,
            relative_performance=rp,
            total_performance=processors * rp)

    def table(self, processor_counts: Sequence[int] = (2, 4, 6, 8, 10, 12)
              ) -> List[OperatingPoint]:
        """Table 1 under the closed model."""
        return [self.operating_point(np) for np in processor_counts]

    def asymptotic_bound(self) -> float:
        """The saturation ceiling on total performance.

        Classic asymptotic bound analysis: the bus caps system
        throughput at ``1/S`` operations per tick, i.e. ``1/(b*S)``
        instructions per tick for ``b`` bus operations per instruction.
        A no-wait processor delivers ``1/base_tpi`` instructions per
        tick, so total performance can never exceed
        ``base_tpi / (b*S)`` — with the paper's parameters,
        11.9 / 1.145 ~= 10.4 processors' worth, which is why "perhaps
        nine processors" is where the knee falls.
        """
        return self.params.base_tpi / self.params.np_denominator
