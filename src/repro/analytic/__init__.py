"""The paper's analytic performance model (§5.2) and a closed-network
refinement of it (the bounded-population case the paper skipped)."""

from repro.analytic.closed_model import ClosedFireflyModel, MvaSolution
from repro.analytic.queueing import (
    AnalyticParameters,
    FireflyAnalyticModel,
    OperatingPoint,
    PAPER_TABLE_1,
)

__all__ = [
    "AnalyticParameters",
    "ClosedFireflyModel",
    "FireflyAnalyticModel",
    "MvaSolution",
    "OperatingPoint",
    "PAPER_TABLE_1",
]
