"""repro — a reproduction of "Firefly: A Multiprocessor Workstation".

Thacker, Stewart & Satterthwaite, ASPLOS II / DEC SRC Research Report
23, 1987.  The package contains:

- a cycle/event-level model of the Firefly hardware — the MBus, snoopy
  caches running the Firefly *conditional write-through* coherence
  protocol (plus five baseline protocols), MicroVAX and CVAX processor
  timing models, main memory, and the QBus I/O subsystem;
- the paper's analytic open-queueing performance model (Table 1);
- a Topaz-like threads runtime (Fork/Join, Mutex, Condition, RPC) whose
  synchronisation state lives in simulated memory words;
- workloads, benchmark harnesses and reporting to regenerate every
  table and figure in the paper's evaluation.

Quickstart::

    from repro import FireflyConfig, FireflyMachine

    machine = FireflyMachine(FireflyConfig(processors=5))
    metrics = machine.run(warmup_cycles=100_000, measure_cycles=400_000)
    print(metrics.summary())
"""

from repro.analytic import FireflyAnalyticModel, OperatingPoint
from repro.cache import CacheGeometry, FireflyProtocol, LineState, SnoopyCache
from repro.system import (
    CoherenceChecker,
    FireflyConfig,
    FireflyMachine,
    Generation,
    MachineMetrics,
)
from repro.topaz import TopazKernel, TopazParams

__version__ = "1.0.0"

__all__ = [
    "CacheGeometry",
    "CoherenceChecker",
    "FireflyAnalyticModel",
    "FireflyConfig",
    "FireflyMachine",
    "FireflyProtocol",
    "Generation",
    "LineState",
    "MachineMetrics",
    "OperatingPoint",
    "SnoopyCache",
    "TopazKernel",
    "TopazParams",
    "__version__",
]
