"""Guarded-action protocol DSL and its static checker pipeline.

One :class:`~repro.protodsl.defs.ProtocolDef` generates everything the
rest of the system needs from a coherence protocol:

- the runtime ``CoherenceProtocol`` subclass ``SnoopyCache`` drives
  (:mod:`repro.protodsl.runtime`),
- the :class:`~repro.protodsl.defs.ProtocolFacts` table the cache fast
  paths and DMA hook gate on, and
- the pure transition oracle the verifier's model checker explores
  without spinning up a simulator (:mod:`repro.protodsl.oracle`);

with the static **guard checker** (:mod:`repro.protodsl.check`)
proving exhaustiveness, disjointness, reachability and fact
consistency over the finite guard space before any simulation runs.

Import note: this package deliberately re-exports only the simulator-
independent pieces (definitions and checker).  The runtime and oracle
live in their own submodules — import them as
``repro.protodsl.runtime`` / ``repro.protodsl.oracle`` — because they
depend on the cache layer, and pulling them in here would make the
package unimportable from inside that layer.
"""

from repro.protodsl.check import GuardFinding, check_guards
from repro.protodsl.defs import (
    GUARD_ALIGNED_LONGWORD,
    GUARD_ALWAYS,
    GUARD_NOT_ALIGNED_LONGWORD,
    AcquireThenWrite,
    AsWriteMiss,
    Goto,
    Invalidate,
    ProtocolDef,
    ProtocolFacts,
    ReadForOwnership,
    ReadMissRule,
    ReadThenWrite,
    SilentWrite,
    SnoopRule,
    Stay,
    TakeData,
    WriteAllocate,
    WriteHitRule,
    WriteMissRule,
    WriteNoAllocate,
    WriteThrough,
)

__all__ = [
    "AcquireThenWrite",
    "AsWriteMiss",
    "GUARD_ALIGNED_LONGWORD",
    "GUARD_ALWAYS",
    "GUARD_NOT_ALIGNED_LONGWORD",
    "Goto",
    "GuardFinding",
    "Invalidate",
    "ProtocolDef",
    "ProtocolFacts",
    "ReadForOwnership",
    "ReadMissRule",
    "ReadThenWrite",
    "SilentWrite",
    "SnoopRule",
    "Stay",
    "TakeData",
    "WriteAllocate",
    "WriteHitRule",
    "WriteMissRule",
    "WriteNoAllocate",
    "WriteThrough",
    "check_guards",
]
