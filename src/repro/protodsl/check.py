"""The guard checker: static proofs over a protocol definition.

Runs before any simulation — :func:`repro.protodsl.runtime.
compile_protocol` refuses to build a runtime class from a definition
with findings, and ``firefly-sim verify`` reports them per protocol.
Because every guard ranges over a small finite space (the declared
state vocabulary, the four bus ops, one boolean of access shape), each
property is proved by exhaustive enumeration, and every finding names
the **minimal counterexample assignment** — the exact (state,
stimulus) cell, plus the guard-variable values where relevant — in
the style of the V1xx lint findings.

Rules
-----
``V200 exhaustiveness``
    Every (state, stimulus) cell the protocol can encounter is covered
    by some rule: each declared state has a write-hit rule, both
    access shapes have a write-miss rule, and every state has a snoop
    rule for every bus op the protocol can observe (the ops its own
    actions emit, plus MRead/MWrite which DMA and victim write-backs
    put on the bus regardless).
``V201 determinism``
    No cell is covered by two rules (overlapping guards make the
    dispatch order-dependent — the one thing a declarative table must
    never be).
``V202 reachability``
    Every declared state is reachable from INVALID along the rules'
    own edges (fills, successor states, snoop effects, DMA results).
    An unreachable state is dead vocabulary or a missing rule.
``V203 fact-consistency``
    The declared facts match the rules: ``silent_write_states`` is
    exactly the set of states whose write-hit action emits no bus op,
    ``silent_write_result`` reproduces those rules' successor states
    (the fast path applies the fact, not the rule), and the DMA result
    states are declared, clean, and — for the shared case — not
    silent-writable (the PR-2 DMA leak bug class).
``V204 vocabulary``
    Every state a rule mentions is declared (and INVALID is never
    declared); the peer co-state is part of the vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.line import LineState
from repro.common.types import BusOp
from repro.protodsl.defs import (
    AcquireThenWrite,
    AsWriteMiss,
    Goto,
    Invalidate,
    ProtocolDef,
    ReadForOwnership,
    ReadThenWrite,
    SilentWrite,
    Stay,
    TakeData,
    WriteAllocate,
    WriteHitRule,
    WriteMissRule,
    WriteNoAllocate,
    WriteThrough,
    WRITE_MISS_GUARDS,
    guard_matches,
)

#: The stimulus labels findings use; chosen to match the transition
#: tables (P-/M- prefixes) so a finding's cell can be looked up there.
STIMULUS_WRITE_HIT = "P-write hit"
STIMULUS_WRITE_MISS = "P-write miss"
STIMULUS_READ_MISS = "P-read miss"

_SNOOP_STIMULUS = {
    BusOp.MREAD: "M-read",
    BusOp.MWRITE: "M-write",
    BusOp.MREAD_EX: "M-read-ex",
    BusOp.MINVALIDATE: "M-invalidate",
}


@dataclass(frozen=True)
class GuardFinding:
    """One guard-checker hit: which rule, which cell, and why.

    ``state`` / ``stimulus`` name the offending (state, stimulus) cell
    when the finding is cell-shaped (None for whole-table findings
    such as an undeclared-state reference).
    """

    rule: str           # "V200" .. "V204"
    protocol: str
    state: Optional[str]
    stimulus: Optional[str]
    message: str

    def __str__(self) -> str:
        cell = ""
        if self.state is not None or self.stimulus is not None:
            parts = []
            if self.state is not None:
                parts.append(f"state {self.state}")
            if self.stimulus is not None:
                parts.append(self.stimulus)
            cell = f" ({', '.join(parts)})"
        return f"{self.protocol}{cell}: {self.rule} {self.message}"

    def sort_key(self):
        return (self.rule, self.state or "", self.stimulus or "",
                self.message)


def check_guards(defn: ProtocolDef) -> List[GuardFinding]:
    """Run every guard-checker rule; empty list means the definition
    is well-formed.  Findings are sorted (rule, state, stimulus) so
    reports and ``--json`` output are stable."""
    findings: List[GuardFinding] = []
    findings += _check_vocabulary(defn)          # V204 first: the other
    declared = set(defn.states)                  # checks assume a sane
    if LineState.INVALID in declared:            # vocabulary.
        declared.discard(LineState.INVALID)
    findings += _check_write_hit_cover(defn, declared)
    findings += _check_write_miss_cover(defn)
    findings += _check_snoop_cover(defn, declared)
    findings += _check_reachability(defn, declared)
    findings += _check_facts(defn, declared)
    return sorted(findings, key=GuardFinding.sort_key)


# -- V204: vocabulary --------------------------------------------------------

def _referenced_states(defn: ProtocolDef):
    """Yield (state, where) for every state the rule tables mention."""
    yield defn.read_miss.shared_state, STIMULUS_READ_MISS
    yield defn.read_miss.exclusive_state, STIMULUS_READ_MISS
    for rule in defn.write_hit:
        for state in sorted(rule.states, key=lambda s: s.value):
            yield state, STIMULUS_WRITE_HIT
        action = rule.action
        if isinstance(action, SilentWrite) and action.next_state is not None:
            yield action.next_state, STIMULUS_WRITE_HIT
        elif isinstance(action, WriteThrough):
            yield action.shared_state, STIMULUS_WRITE_HIT
            yield action.exclusive_state, STIMULUS_WRITE_HIT
        elif isinstance(action, AcquireThenWrite):
            yield action.next_state, STIMULUS_WRITE_HIT
    for rule in defn.write_miss:
        action = rule.action
        if isinstance(action, ReadForOwnership):
            yield action.fill_state, STIMULUS_WRITE_MISS
        elif isinstance(action, WriteAllocate):
            yield action.shared_state, STIMULUS_WRITE_MISS
            yield action.exclusive_state, STIMULUS_WRITE_MISS
    for rule in defn.snoop:
        stimulus = _SNOOP_STIMULUS.get(rule.op, str(rule.op))
        for state in sorted(rule.states, key=lambda s: s.value):
            yield state, stimulus
        if isinstance(rule.effect, (Goto, TakeData)):
            yield rule.effect.state, stimulus


def _check_vocabulary(defn: ProtocolDef) -> List[GuardFinding]:
    findings = []
    declared = set(defn.states)
    if LineState.INVALID in declared:
        findings.append(GuardFinding(
            "V204", defn.name, LineState.INVALID.value, None,
            "INVALID must not be declared; it is implicit in every "
            "vocabulary"))
    seen = set()
    for state, stimulus in _referenced_states(defn):
        if state is LineState.INVALID or state in declared:
            continue
        if (state, stimulus) in seen:
            continue
        seen.add((state, stimulus))
        findings.append(GuardFinding(
            "V204", defn.name, state.value, stimulus,
            f"rule references undeclared state {state.value}"))
    if defn.peer_costate not in declared:
        findings.append(GuardFinding(
            "V204", defn.name, defn.peer_costate.value, None,
            f"peer co-state {defn.peer_costate.value} is not a "
            f"declared state"))
    return findings


# -- V200/V201: write-hit coverage ------------------------------------------

def _check_write_hit_cover(defn: ProtocolDef,
                           declared) -> List[GuardFinding]:
    findings = []
    for state in sorted(declared, key=lambda s: s.value):
        covering = [rule for rule in defn.write_hit if state in rule.states]
        if not covering:
            findings.append(GuardFinding(
                "V200", defn.name, state.value, STIMULUS_WRITE_HIT,
                f"no guard covers the cell: a write hit in state "
                f"{state.value} has no action"))
        elif len(covering) > 1:
            kinds = ", ".join(type(rule.action).__name__
                              for rule in covering)
            findings.append(GuardFinding(
                "V201", defn.name, state.value, STIMULUS_WRITE_HIT,
                f"{len(covering)} guards overlap on the cell "
                f"({kinds}); dispatch would be order-dependent"))
    return findings


# -- V200/V201: write-miss coverage -----------------------------------------

def _check_write_miss_cover(defn: ProtocolDef) -> List[GuardFinding]:
    findings = []
    for rule in defn.write_miss:
        if rule.guard not in WRITE_MISS_GUARDS:
            findings.append(GuardFinding(
                "V204", defn.name, LineState.INVALID.value,
                STIMULUS_WRITE_MISS,
                f"unknown write-miss guard {rule.guard!r}"))
            return findings
    for aligned in (False, True):
        covering = [rule for rule in defn.write_miss
                    if guard_matches(rule.guard, aligned)]
        assignment = f"aligned_longword={aligned}"
        if not covering:
            findings.append(GuardFinding(
                "V200", defn.name, LineState.INVALID.value,
                STIMULUS_WRITE_MISS,
                f"no guard covers the assignment {assignment}"))
        elif len(covering) > 1:
            kinds = ", ".join(type(rule.action).__name__
                              for rule in covering)
            findings.append(GuardFinding(
                "V201", defn.name, LineState.INVALID.value,
                STIMULUS_WRITE_MISS,
                f"{len(covering)} guards overlap on the assignment "
                f"{assignment} ({kinds})"))
    return findings


# -- V200/V201: snoop coverage ----------------------------------------------

def _check_snoop_cover(defn: ProtocolDef, declared) -> List[GuardFinding]:
    findings = []
    # DMA reads/writes and victim write-backs reach every snooper no
    # matter what the protocol itself emits.
    required = sorted(defn.emitted_bus_ops() | {BusOp.MREAD, BusOp.MWRITE},
                      key=lambda op: op.value)
    for op in required:
        stimulus = _SNOOP_STIMULUS[op]
        for state in sorted(declared, key=lambda s: s.value):
            covering = [rule for rule in defn.snoop
                        if rule.op is op and state in rule.states]
            if not covering:
                findings.append(GuardFinding(
                    "V200", defn.name, state.value, stimulus,
                    f"no snoop guard covers the cell: a resident line "
                    f"in {state.value} would raise on a snooped "
                    f"{op.value}"))
            elif len(covering) > 1:
                findings.append(GuardFinding(
                    "V201", defn.name, state.value, stimulus,
                    f"{len(covering)} snoop guards overlap on the cell"))
    return findings


# -- V202: reachability ------------------------------------------------------

def _successor_states(defn: ProtocolDef, state: LineState):
    """States one rule application can move a line in ``state`` to.

    ``state`` may be INVALID (the miss rules apply); the walk includes
    snoop effects and the DMA result states, since those are real
    stimuli a line can experience.
    """
    successors = set()
    if state is LineState.INVALID:
        successors.add(defn.read_miss.shared_state)
        successors.add(defn.read_miss.exclusive_state)
        for rule in defn.write_miss:
            successors |= _write_miss_targets(defn, rule)
    else:
        rule = defn.write_hit_rule(state)
        if rule is not None:
            successors |= _write_hit_targets(defn, rule, state)
        for snoop_rule in defn.snoop:
            if state not in snoop_rule.states:
                continue
            effect = snoop_rule.effect
            if isinstance(effect, (Goto, TakeData)):
                successors.add(effect.state)
        successors.add(defn.dma_shared_state)
        successors.add(defn.dma_exclusive_state)
    successors.discard(LineState.INVALID)
    return successors


def _write_hit_targets(defn, rule: WriteHitRule, state: LineState):
    action = rule.action
    if isinstance(action, SilentWrite):
        return {action.next_state if action.next_state is not None
                else state}
    if isinstance(action, WriteThrough):
        return {action.shared_state, action.exclusive_state}
    if isinstance(action, AcquireThenWrite):
        return {action.next_state}
    if isinstance(action, AsWriteMiss):
        targets = set()
        for miss_rule in defn.write_miss:
            targets |= _write_miss_targets(defn, miss_rule)
        return targets
    return set()


def _write_miss_targets(defn, rule: WriteMissRule):
    action = rule.action
    if isinstance(action, ReadForOwnership):
        return {action.fill_state}
    if isinstance(action, WriteAllocate):
        return {action.shared_state, action.exclusive_state}
    if isinstance(action, ReadThenWrite):
        targets = set()
        for fill in (defn.read_miss.shared_state,
                     defn.read_miss.exclusive_state):
            hit_rule = defn.write_hit_rule(fill)
            if hit_rule is not None:
                targets |= _write_hit_targets(defn, hit_rule, fill)
        return targets
    return set()  # WriteNoAllocate fills nothing


def _check_reachability(defn: ProtocolDef, declared) -> List[GuardFinding]:
    reached = {LineState.INVALID}
    frontier = [LineState.INVALID]
    while frontier:
        state = frontier.pop()
        for successor in sorted(_successor_states(defn, state),
                                key=lambda s: s.value):
            if successor not in reached:
                reached.add(successor)
                frontier.append(successor)
    findings = []
    for state in sorted(declared, key=lambda s: s.value):
        if state not in reached:
            findings.append(GuardFinding(
                "V202", defn.name, state.value, None,
                f"declared state {state.value} is unreachable from "
                f"INVALID along the rules' own edges (orphan state)"))
    return findings


# -- V203: fact consistency --------------------------------------------------

def _check_facts(defn: ProtocolDef, declared) -> List[GuardFinding]:
    findings = []
    silent_by_rules = set()
    for state in sorted(declared, key=lambda s: s.value):
        rule = defn.write_hit_rule(state)
        if rule is not None and isinstance(rule.action, SilentWrite):
            silent_by_rules.add(state)

    for state in sorted(defn.silent_write_states, key=lambda s: s.value):
        if state not in declared:
            findings.append(GuardFinding(
                "V203", defn.name, state.value, STIMULUS_WRITE_HIT,
                f"declared silent-write state {state.value} is not in "
                f"the state vocabulary"))
        elif state not in silent_by_rules:
            rule = defn.write_hit_rule(state)
            kind = type(rule.action).__name__ if rule else "<uncovered>"
            findings.append(GuardFinding(
                "V203", defn.name, state.value, STIMULUS_WRITE_HIT,
                f"declared silent-write state {state.value} actually "
                f"performs {kind} (a bus operation) on a write hit"))
    for state in sorted(silent_by_rules, key=lambda s: s.value):
        if state not in defn.silent_write_states:
            findings.append(GuardFinding(
                "V203", defn.name, state.value, STIMULUS_WRITE_HIT,
                f"write hits in {state.value} are silent but the state "
                f"is not declared in silent_write_states — the runtime "
                f"checker and fast path would not know"))

    # The fast path applies the single declared result state to every
    # silent hit; each silent rule's successor must agree with it.
    for state in sorted(defn.silent_write_states & silent_by_rules,
                        key=lambda s: s.value):
        rule = defn.write_hit_rule(state)
        actual = (rule.action.next_state
                  if rule.action.next_state is not None else state)
        expected = (defn.silent_write_result
                    if defn.silent_write_result is not None else state)
        if actual is not expected:
            findings.append(GuardFinding(
                "V203", defn.name, state.value, STIMULUS_WRITE_HIT,
                f"silent write in {state.value} ends in {actual.value} "
                f"but the declared silent_write_result fact says "
                f"{expected.value} — the fast path would diverge"))

    if (defn.silent_write_result is not None
            and defn.silent_write_result not in declared):
        findings.append(GuardFinding(
            "V203", defn.name, defn.silent_write_result.value,
            STIMULUS_WRITE_HIT,
            "silent_write_result is not a declared state"))

    for label, state in (("dma_shared_state", defn.dma_shared_state),
                         ("dma_exclusive_state", defn.dma_exclusive_state)):
        if state not in declared:
            findings.append(GuardFinding(
                "V203", defn.name, state.value, "DMA-write",
                f"{label} {state.value} is not a declared state"))
        elif state.is_dirty:
            findings.append(GuardFinding(
                "V203", defn.name, state.value, "DMA-write",
                f"{label} {state.value} is a dirty state, but a DMA "
                f"write leaves the resident copy clean (memory was "
                f"updated by the same transaction)"))
    if defn.dma_shared_state in defn.silent_write_states:
        findings.append(GuardFinding(
            "V203", defn.name, defn.dma_shared_state.value, "DMA-write",
            f"dma_shared_state {defn.dma_shared_state.value} is a "
            f"silent-write state: a DMA write with sharers present "
            f"would let the next local write skip the bus and leave "
            f"the sharers stale (the DMA-leak bug class)"))
    return findings
