"""The guarded-action protocol description language (the nouns).

A snoopy (or directory-style) coherence protocol is declared as a
:class:`ProtocolDef`: a state vocabulary plus small tables of guarded
rules, one table per stimulus family.  Each rule pairs a *guard* (the
set of line states it covers, plus — for write misses — a predicate
over the access shape) with a single *action* drawn from a closed
vocabulary.  The closed vocabulary is the point: because every action
is a declarative value rather than imperative code, three artefacts
can be generated from one definition —

- the runtime :class:`~repro.cache.protocols.base.CoherenceProtocol`
  subclass ``SnoopyCache`` drives (:mod:`repro.protodsl.runtime`),
- the protocol facts the cache's fast paths and the DMA port gate on
  (:class:`ProtocolFacts`), and
- the pure transition oracle the static verifier explores without a
  simulator (:mod:`repro.protodsl.oracle`),

and a static **guard checker** (:mod:`repro.protodsl.check`) can prove
exhaustiveness, disjointness, reachability and fact consistency over
the finite guard space before any simulation runs.

The modelling follows the guarded-action style of protocol
specification (see PAPERS.md, "Modeling a Cache Coherence Protocol
with the Guarded Action Language"); the BedRock directory protocol
definition demonstrates that the vocabulary is not snoopy-specific.

Stimulus families and their action vocabularies
-----------------------------------------------
``read_miss`` (exactly one rule)
    :class:`ReadMissRule` — victimize, MRead, fill with the shared or
    exclusive state selected by the MShared response.
``write_hit`` (one rule per covered state set)
    :class:`SilentWrite` — store locally, optionally change state; no
    bus operation (the fast-path case).
    :class:`WriteThrough` — drive an MWrite with the merged line
    (optionally caches-only, Dragon style); successor state selected
    by the MShared response.
    :class:`AcquireThenWrite` — MInvalidate to claim exclusivity, then
    store locally; falls back to the write-miss path if a competing
    writer serialised first.
    :class:`AsWriteMiss` — delegate to the write-miss table (Synapse's
    clean-hit re-fetch).
``write_miss`` (guarded by access shape)
    :class:`ReadForOwnership` — victimize, MReadEx, merge, fill dirty.
    :class:`ReadThenWrite` — read-miss then write-hit composition.
    :class:`WriteAllocate` — aligned-longword write-through allocate
    (the Firefly optimisation).
    :class:`WriteNoAllocate` — write-through without allocation.
``snoop`` (one rule per (bus op, state set))
    :class:`SnoopRule` with an effect of :class:`Stay`, :class:`Goto`,
    :class:`TakeData` or :class:`Invalidate`, plus supply/write-back/
    MShared response flags and an optional statistics counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.cache.line import LineState
from repro.common.types import BusOp

#: Guard predicates over the access shape of a write miss.  The only
#: shape fact the protocols consult is whether the access is an
#: aligned full-longword store on a one-word line (the Firefly's
#: write-allocate shortcut); the guard space is therefore a single
#: boolean, which keeps exhaustiveness/disjointness checking exact.
GUARD_ALWAYS = "always"
GUARD_ALIGNED_LONGWORD = "aligned-longword"
GUARD_NOT_ALIGNED_LONGWORD = "not-aligned-longword"

WRITE_MISS_GUARDS = (GUARD_ALWAYS, GUARD_ALIGNED_LONGWORD,
                     GUARD_NOT_ALIGNED_LONGWORD)


def guard_matches(guard: str, aligned_longword: bool) -> bool:
    """Evaluate a write-miss guard on one assignment of the guard var."""
    if guard == GUARD_ALWAYS:
        return True
    if guard == GUARD_ALIGNED_LONGWORD:
        return aligned_longword
    return not aligned_longword


# -- read miss ---------------------------------------------------------------

@dataclass(frozen=True)
class ReadMissRule:
    """Victimize, MRead, fill; the MShared response picks the state."""

    shared_state: LineState
    exclusive_state: LineState


# -- write-hit actions -------------------------------------------------------

@dataclass(frozen=True)
class SilentWrite:
    """Store locally with no bus operation; ``None`` keeps the state."""

    next_state: Optional[LineState] = None


@dataclass(frozen=True)
class WriteThrough:
    """MWrite the merged line; successor chosen by the MShared response.

    ``update_memory=False`` is the Dragon caches-only update broadcast.
    The store is skipped (line left dropped) if a competing writer's
    invalidation serialised first — the write still reached the bus.
    """

    counter: str
    shared_state: LineState
    exclusive_state: LineState
    update_memory: bool = True


@dataclass(frozen=True)
class AcquireThenWrite:
    """MInvalidate to claim exclusivity, then store locally.

    If the copy was lost while the invalidation waited for the bus (a
    competing writer serialised first), the access is retried through
    the write-miss table.
    """

    next_state: LineState
    counter: str = "invalidations_sent"


@dataclass(frozen=True)
class AsWriteMiss:
    """Delegate the hit to the write-miss table (ownership re-fetch)."""


@dataclass(frozen=True)
class WriteHitRule:
    """One guarded write-hit action covering a set of line states."""

    states: FrozenSet[LineState]
    action: object  # SilentWrite | WriteThrough | AcquireThenWrite | AsWriteMiss


# -- write-miss actions ------------------------------------------------------

@dataclass(frozen=True)
class ReadForOwnership:
    """Victimize, MReadEx (fetch + invalidate all copies), merge, fill."""

    fill_state: LineState


@dataclass(frozen=True)
class ReadThenWrite:
    """A read miss followed immediately by a write hit (the paper's
    rule for the Firefly's partial/multi-word write misses and the
    Dragon's only write-miss path)."""


@dataclass(frozen=True)
class WriteAllocate:
    """Aligned-longword shortcut: victimize, MWrite the word, allocate
    clean with the state the MShared response selects."""

    counter: str
    shared_state: LineState
    exclusive_state: LineState


@dataclass(frozen=True)
class WriteNoAllocate:
    """Write through without allocating (multi-word lines read-merge
    first); the cache contents are untouched."""

    counter: str


@dataclass(frozen=True)
class WriteMissRule:
    """One guarded write-miss action; the guard is over access shape."""

    guard: str  # one of WRITE_MISS_GUARDS
    action: object  # ReadForOwnership | ReadThenWrite | WriteAllocate | WriteNoAllocate


# -- snoop rules -------------------------------------------------------------

@dataclass(frozen=True)
class Stay:
    """Keep the current state."""


@dataclass(frozen=True)
class Goto:
    """Move the line to a fixed state."""

    state: LineState


@dataclass(frozen=True)
class TakeData:
    """Refresh the copy from the bus data, then move to a fixed state."""

    state: LineState


@dataclass(frozen=True)
class Invalidate:
    """Drop the copy."""


@dataclass(frozen=True)
class SnoopRule:
    """The M-arc for one (bus op, state set) cell.

    ``supply`` drives the line's data onto the bus (memory inhibit);
    ``write_back`` additionally asks the bus to snarf the supplied
    data into main memory in the same transaction; ``shared`` asserts
    the MShared wire; ``counter`` increments a cache statistic.
    """

    op: BusOp
    states: FrozenSet[LineState]
    effect: object  # Stay | Goto | TakeData | Invalidate
    supply: bool = False
    write_back: bool = False
    counter: Optional[str] = None
    shared: bool = True


# -- the definition ----------------------------------------------------------

@dataclass(frozen=True)
class ProtocolFacts:
    """The generated facts table — the single source the cache layer,
    the DMA port, the fast paths and the FSM machinery consume.

    Every field is derived from (and proven consistent with, by the
    guard checker) the owning :class:`ProtocolDef`; nothing here is
    hand-maintained per protocol any more.
    """

    name: str
    states: Tuple[LineState, ...]
    peer_costate: LineState
    silent_write_states: FrozenSet[LineState]
    silent_write_result: Optional[LineState]
    dma_shared_state: LineState
    dma_exclusive_state: LineState


@dataclass(frozen=True)
class ProtocolDef:
    """One protocol, fully declared.

    ``states`` excludes INVALID (it is implicit, as in
    ``fsm.PROTOCOL_STATES``).  ``peer_costate`` is the state a peer
    cache naturally holds while sharing the line (the probe rigs and
    the figure both need it).  The ``silent_write_*`` and ``dma_*``
    fields are *declared facts*: the guard checker proves them
    consistent with the rule tables, and the compiler wires them onto
    the generated class — they are never transcribed by hand anywhere
    else.
    """

    name: str
    states: Tuple[LineState, ...]
    peer_costate: LineState
    read_miss: ReadMissRule
    write_hit: Tuple[WriteHitRule, ...]
    write_miss: Tuple[WriteMissRule, ...]
    snoop: Tuple[SnoopRule, ...]
    silent_write_states: FrozenSet[LineState] = field(default=frozenset())
    silent_write_result: Optional[LineState] = LineState.DIRTY
    dma_shared_state: LineState = LineState.SHARED
    dma_exclusive_state: LineState = LineState.VALID

    def facts(self) -> ProtocolFacts:
        """The generated facts table for this definition."""
        return ProtocolFacts(
            name=self.name,
            states=self.states,
            peer_costate=self.peer_costate,
            silent_write_states=self.silent_write_states,
            silent_write_result=self.silent_write_result,
            dma_shared_state=self.dma_shared_state,
            dma_exclusive_state=self.dma_exclusive_state,
        )

    # -- small lookup helpers shared by runtime, oracle and checker ----

    def write_hit_rule(self, state: LineState) -> Optional[WriteHitRule]:
        for rule in self.write_hit:
            if state in rule.states:
                return rule
        return None

    def write_miss_rule(self, aligned_longword: bool
                        ) -> Optional[WriteMissRule]:
        for rule in self.write_miss:
            if guard_matches(rule.guard, aligned_longword):
                return rule
        return None

    def snoop_rule(self, op: BusOp, state: LineState
                   ) -> Optional[SnoopRule]:
        for rule in self.snoop:
            if rule.op is op and state in rule.states:
                return rule
        return None

    def emitted_bus_ops(self) -> FrozenSet[BusOp]:
        """Every bus op this protocol's own actions can initiate.

        Victim write-backs mean every protocol with a dirty state
        emits MWrite; DMA traffic means every protocol must tolerate
        snooped MRead and MWrite regardless — the checker folds that
        in separately.
        """
        ops = {BusOp.MREAD}  # read misses always read
        for rule in self.write_hit:
            action = rule.action
            if isinstance(action, WriteThrough):
                ops.add(BusOp.MWRITE)
            elif isinstance(action, AcquireThenWrite):
                ops.add(BusOp.MINVALIDATE)
        for rule in self.write_miss:
            action = rule.action
            if isinstance(action, ReadForOwnership):
                ops.add(BusOp.MREAD_EX)
            elif isinstance(action, (WriteAllocate, WriteNoAllocate)):
                ops.add(BusOp.MWRITE)
        if any(state.is_dirty for state in self.states):
            ops.add(BusOp.MWRITE)  # victim write-backs
        return frozenset(ops)
