"""Public alias for the DSL runtime compiler/interpreter.

The implementation lives in :mod:`repro.cache.protocols.dsl` (inside
the protocols package, which keeps the import graph acyclic from every
entry point); this module is the protodsl-facing name for it.
"""

from repro.cache.protocols.dsl import (
    DSLProtocol,
    ProtocolDefinitionError,
    definition_of,
)

__all__ = ["DSLProtocol", "ProtocolDefinitionError", "definition_of"]
