"""Pure transition oracles generated from a protocol definition.

Two oracles, both derived from a
:class:`~repro.protodsl.defs.ProtocolDef` with **no simulator in the
loop**:

:func:`line_table`
    The single-line transition function over the same (state, stimulus,
    peer-presence) domain :func:`repro.cache.fsm.full_transition_table`
    *measures* with a live two-cache rig.  The oracle-equivalence tests
    diff the generated table against the measured one cell by cell for
    every registered protocol — the declarative definition and the
    running implementation are thereby proven to describe the same
    machine (both are compiled from the definition, but the measured
    side exercises the real cache/bus/arbitration stack).

:func:`global_step`
    One stimulus applied to the version-abstracted N-cache global state
    the model checker explores.  ``ModelChecker(oracle="dsl")`` uses it
    as the transition function instead of materialising a fresh rig per
    step, which makes exhaustive exploration orders of magnitude
    cheaper; the cross-validation tests assert the "sim" and "dsl"
    oracles reach identical state sets.

The global step mirrors the MBus transaction semantics: the MShared
response is the OR over the responding snoopers, suppliers inhibit
memory, ``write_back`` snarfs the supplied line into memory in the
same transaction, and the initiator never snoops its own operation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.fsm import Transition
from repro.cache.line import LineState
from repro.common.errors import SimulationError
from repro.common.types import BusOp
from repro.protodsl.defs import (
    AcquireThenWrite,
    AsWriteMiss,
    Goto,
    Invalidate,
    ProtocolDef,
    ReadForOwnership,
    ReadThenWrite,
    SilentWrite,
    TakeData,
    WriteAllocate,
    WriteNoAllocate,
    WriteThrough,
)

#: (state value, version | None) per cache, plus the memory version —
#: structurally identical to repro.verify.model.GlobalState, kept
#: duplicated here so the oracle stays importable without the verifier.
CacheView = Tuple[str, Optional[int]]
GlobalState = Tuple[Tuple[CacheView, ...], int]


# =========================================================================
# single-line table (the fsm.full_transition_table twin)
# =========================================================================

def _snoop_outcome(defn: ProtocolDef, op: BusOp, state: LineState,
                   written: Optional[object] = None):
    """(end state, shared, supplies, write_back) for one snooped cell.

    ``written`` is the payload version a TakeData effect would adopt
    (only meaningful for MWRITE); the line-table path ignores it.
    """
    rule = defn.snoop_rule(op, state)
    if rule is None:
        raise SimulationError(
            f"{defn.name} has no snoop rule for {op.value} in "
            f"{state.value} (the guard checker should have caught this)")
    effect = rule.effect
    if isinstance(effect, Goto):
        end = effect.state
    elif isinstance(effect, TakeData):
        end = effect.state
    elif isinstance(effect, Invalidate):
        end = LineState.INVALID
    else:  # Stay
        end = state
    return end, rule.shared, rule.supply, rule.write_back


def _peer_after(defn: ProtocolDef, op: BusOp,
                peer_state: LineState) -> Tuple[LineState, bool]:
    """(peer end state, MShared asserted) when the peer snoops ``op``."""
    end, shared, _, _ = _snoop_outcome(defn, op, peer_state)
    return end, shared


def _pure_write_hit(defn: ProtocolDef, start: LineState,
                    peer: LineState) -> Tuple[LineState, LineState,
                                              List[str]]:
    """(focal end, peer end, bus ops) for a write hit in ``start``."""
    action = defn.write_hit_rule(start).action
    if isinstance(action, SilentWrite):
        end = action.next_state if action.next_state is not None else start
        return end, peer, []
    if isinstance(action, WriteThrough):
        peer_end, shared = (_peer_after(defn, BusOp.MWRITE, peer)
                            if peer is not LineState.INVALID
                            else (peer, False))
        end = action.shared_state if shared else action.exclusive_state
        return end, peer_end, [BusOp.MWRITE.value]
    if isinstance(action, AcquireThenWrite):
        peer_end = peer
        if peer is not LineState.INVALID:
            peer_end, _ = _peer_after(defn, BusOp.MINVALIDATE, peer)
        return action.next_state, peer_end, [BusOp.MINVALIDATE.value]
    # AsWriteMiss: re-fetch through the write-miss table.  The probe
    # geometry is one aligned longword, and the resident line is the
    # probed one, so victimisation applies to ``start`` itself.
    return _pure_write_miss(defn, start, peer)


def _pure_write_miss(defn: ProtocolDef, resident: LineState,
                     peer: LineState) -> Tuple[LineState, LineState,
                                               List[str]]:
    """(focal end, peer end, bus ops) for the aligned-longword
    write-miss path, with ``resident`` the line being displaced
    (INVALID when the slot is empty)."""
    ops: List[str] = []
    peer_end = peer
    if resident is not LineState.INVALID and resident.is_dirty:
        ops.append("MWrite(victim)")
        if peer_end is not LineState.INVALID:
            peer_end, _ = _peer_after(defn, BusOp.MWRITE, peer_end)
    action = defn.write_miss_rule(True).action
    if isinstance(action, ReadThenWrite):
        filled, peer_end, read_ops = _pure_read_miss(defn, LineState.INVALID,
                                                     peer_end)
        hit_end, peer_end, hit_ops = _pure_write_hit(defn, filled, peer_end)
        return hit_end, peer_end, ops + read_ops + hit_ops
    if isinstance(action, ReadForOwnership):
        if peer_end is not LineState.INVALID:
            peer_end, _ = _peer_after(defn, BusOp.MREAD_EX, peer_end)
        return action.fill_state, peer_end, ops + [BusOp.MREAD_EX.value]
    if isinstance(action, WriteAllocate):
        shared = False
        if peer_end is not LineState.INVALID:
            peer_end, shared = _peer_after(defn, BusOp.MWRITE, peer_end)
        end = action.shared_state if shared else action.exclusive_state
        return end, peer_end, ops + [BusOp.MWRITE.value]
    # WriteNoAllocate: the cache is left untouched.
    if peer_end is not LineState.INVALID:
        peer_end, _ = _peer_after(defn, BusOp.MWRITE, peer_end)
    return resident, peer_end, ops + [BusOp.MWRITE.value]


def _pure_read_miss(defn: ProtocolDef, resident: LineState,
                    peer: LineState) -> Tuple[LineState, LineState,
                                              List[str]]:
    ops: List[str] = []
    peer_end = peer
    if resident is not LineState.INVALID and resident.is_dirty:
        ops.append("MWrite(victim)")
        if peer_end is not LineState.INVALID:
            peer_end, _ = _peer_after(defn, BusOp.MWRITE, peer_end)
    shared = False
    if peer_end is not LineState.INVALID:
        peer_end, shared = _peer_after(defn, BusOp.MREAD, peer_end)
    rule = defn.read_miss
    end = rule.shared_state if shared else rule.exclusive_state
    return end, peer_end, ops + [BusOp.MREAD.value]


def line_table(defn: ProtocolDef
               ) -> Dict[Tuple[LineState, str, bool], Transition]:
    """The generated twin of :func:`repro.cache.fsm.full_transition_table`.

    Same domain, same :class:`~repro.cache.fsm.Transition` records
    (states, sorted bus-op labels, peer end states), derived from the
    definition alone.
    """
    states = (LineState.INVALID,) + tuple(defn.states)
    table: Dict[Tuple[LineState, str, bool], Transition] = {}
    for start in states:
        for stimulus in ("P-read", "P-write", "M-read", "M-write"):
            for peer_holds in (False, True):
                if stimulus.startswith("M-") and peer_holds:
                    continue
                if stimulus.startswith("M-") and start is LineState.INVALID:
                    continue
                peer = defn.peer_costate if peer_holds else LineState.INVALID
                if stimulus == "P-read":
                    if start is LineState.INVALID:
                        end, peer_end, ops = _pure_read_miss(
                            defn, start, peer)
                    else:
                        end, peer_end, ops = start, peer, []
                elif stimulus == "P-write":
                    if start is LineState.INVALID:
                        end, peer_end, ops = _pure_write_miss(
                            defn, start, peer)
                    else:
                        end, peer_end, ops = _pure_write_hit(
                            defn, start, peer)
                elif stimulus == "M-read":
                    end, _, _, _ = _snoop_outcome(defn, BusOp.MREAD, start)
                    peer_end, ops = peer, [BusOp.MREAD.value]
                else:  # M-write
                    end, _, _, _ = _snoop_outcome(defn, BusOp.MWRITE, start)
                    peer_end, ops = peer, [BusOp.MWRITE.value]
                table[(start, stimulus, peer_holds)] = Transition(
                    start=start,
                    stimulus=(stimulus if start is not LineState.INVALID
                              else stimulus + "-miss"),
                    peer_holds=peer_holds,
                    end=end,
                    bus_ops=tuple(sorted(ops)),
                    peer_end=peer_end if peer_holds else None,
                )
    return table


# =========================================================================
# global N-cache step (the model checker's "dsl" oracle)
# =========================================================================

class _World:
    """Mutable working copy of one abstract global state."""

    def __init__(self, defn: ProtocolDef, state: GlobalState) -> None:
        self.defn = defn
        views, self.memory = state
        self.states = [LineState(value) for value, _ in views]
        self.versions: List[Optional[int]] = [v for _, v in views]

    def freeze(self) -> GlobalState:
        views = tuple(
            (state.value, None if state is LineState.INVALID else version)
            for state, version in zip(self.states, self.versions))
        return views, self.memory

    def resident(self, cache: int) -> bool:
        return self.states[cache] is not LineState.INVALID

    # -- one bus transaction ------------------------------------------

    def transact(self, initiator: int, op: BusOp,
                 written: Optional[int] = None,
                 update_memory: bool = True) -> Tuple[bool, Optional[int]]:
        """Snoop fan-out for one transaction; returns (shared, data).

        ``written`` is the payload version for MWRITE.  ``data`` is
        what a read returns: the supplied version if a cache drove the
        bus (memory inhibited), otherwise the memory version.
        """
        defn = self.defn
        shared = False
        supplied: Optional[int] = None
        snarf = False
        for cache in range(len(self.states)):
            if cache == initiator or not self.resident(cache):
                continue
            state = self.states[cache]
            end, responds_shared, supplies, write_back = _snoop_outcome(
                defn, op, state)
            shared = shared or responds_shared
            if supplies:
                version = self.versions[cache]
                if supplied is not None and supplied != version:
                    raise SimulationError(
                        f"{defn.name}: conflicting supplier data "
                        f"(versions {supplied} and {version}) on "
                        f"{op.value}")
                supplied = version
                snarf = snarf or write_back
            self.states[cache] = end
            if end is LineState.INVALID:
                self.versions[cache] = None
            elif isinstance(defn.snoop_rule(op, state).effect, TakeData):
                self.versions[cache] = written
        if op is BusOp.MWRITE:
            if update_memory:
                self.memory = written
            return shared, None
        data = supplied if supplied is not None else self.memory
        if snarf:
            self.memory = data
        return shared, data

    # -- processor-side compositions -----------------------------------

    def victimize(self, cache: int) -> None:
        if self.resident(cache) and self.states[cache].is_dirty:
            self.transact(cache, BusOp.MWRITE,
                          written=self.versions[cache])
        self.states[cache] = LineState.INVALID
        self.versions[cache] = None

    def read_miss(self, cache: int) -> None:
        self.victimize(cache)
        shared, data = self.transact(cache, BusOp.MREAD)
        rule = self.defn.read_miss
        self.states[cache] = (rule.shared_state if shared
                              else rule.exclusive_state)
        self.versions[cache] = data

    def write_hit(self, cache: int, fresh: int) -> None:
        action = self.defn.write_hit_rule(self.states[cache]).action
        if isinstance(action, SilentWrite):
            self.versions[cache] = fresh
            if action.next_state is not None:
                self.states[cache] = action.next_state
            return
        if isinstance(action, WriteThrough):
            shared, _ = self.transact(cache, BusOp.MWRITE, written=fresh,
                                      update_memory=action.update_memory)
            self.versions[cache] = fresh
            self.states[cache] = (action.shared_state if shared
                                  else action.exclusive_state)
            return
        if isinstance(action, AcquireThenWrite):
            self.transact(cache, BusOp.MINVALIDATE)
            # One stimulus at a time: the copy can never be lost while
            # the invalidation waits, so no write-miss fallback here.
            self.versions[cache] = fresh
            self.states[cache] = action.next_state
            return
        # AsWriteMiss
        self.write_miss(cache, fresh)

    def write_miss(self, cache: int, fresh: int) -> None:
        # The model's geometry is one aligned longword per line.
        action = self.defn.write_miss_rule(True).action
        if isinstance(action, ReadThenWrite):
            self.read_miss(cache)
            self.write_hit(cache, fresh)
            return
        self.victimize(cache)
        if isinstance(action, ReadForOwnership):
            self.transact(cache, BusOp.MREAD_EX)
            self.states[cache] = action.fill_state
            self.versions[cache] = fresh  # fetched line, own word merged
            return
        if isinstance(action, WriteAllocate):
            shared, _ = self.transact(cache, BusOp.MWRITE, written=fresh)
            self.states[cache] = (action.shared_state if shared
                                  else action.exclusive_state)
            self.versions[cache] = fresh
            return
        # WriteNoAllocate: nothing is filled.
        self.transact(cache, BusOp.MWRITE, written=fresh)

    def dma_read(self, cache: int) -> None:
        if self.resident(cache):
            return  # hit: served from the cache, no bus traffic
        self.transact(cache, BusOp.MREAD)  # miss: read, do not allocate

    def dma_write(self, cache: int, fresh: int) -> None:
        was_resident = self.resident(cache)
        shared, _ = self.transact(cache, BusOp.MWRITE, written=fresh)
        if was_resident:
            # The copy merged the DMA word at grant time and memory was
            # updated by the same transaction: clean, state per facts.
            self.versions[cache] = fresh
            self.states[cache] = (self.defn.dma_shared_state if shared
                                  else self.defn.dma_exclusive_state)


def global_step(defn: ProtocolDef, state: GlobalState, kind: str,
                cache: int, fresh_version: int) -> GlobalState:
    """Apply one model-checker stimulus purely; returns the raw
    (un-canonicalised) successor state.

    ``kind`` is one of ``P-read`` / ``P-write`` / ``DMA-read`` /
    ``DMA-write`` — the same stimulus vocabulary
    :class:`repro.verify.model.ModelChecker` explores.
    """
    world = _World(defn, state)
    if kind == "P-read":
        if not world.resident(cache):
            world.read_miss(cache)
    elif kind == "P-write":
        if world.resident(cache):
            world.write_hit(cache, fresh_version)
        else:
            world.write_miss(cache, fresh_version)
    elif kind == "DMA-read":
        world.dma_read(cache)
    elif kind == "DMA-write":
        world.dma_write(cache, fresh_version)
    else:
        raise SimulationError(f"unknown stimulus kind {kind!r}")
    return world.freeze()
