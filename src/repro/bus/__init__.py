"""Bus models: the MBus memory bus and the QBus I/O bus.

The MBus (``repro.bus.mbus``) is the heart of the Firefly: a 100 ns
cycle, 4-cycle-per-operation shared bus with fixed-priority arbitration
and the ``MShared`` snoop-response wire.  The QBus (``repro.bus.qbus``)
is the standard DEC I/O bus, reached only through the I/O processor,
with mapping registers translating its 22-bit space into the Firefly's
physical space.
"""

from repro.bus.mbus import MBus, SnoopResult, Snooper
from repro.bus.qbus import QBus, QBusMap
from repro.bus.signals import SignalTrace, TimingDiagram

__all__ = [
    "MBus",
    "QBus",
    "QBusMap",
    "SignalTrace",
    "Snooper",
    "SnoopResult",
    "TimingDiagram",
]
