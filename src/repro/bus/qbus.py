"""The QBus: the Firefly's standard DEC I/O bus.

The Firefly borrowed the entire MicroVAX II I/O system (paper §3): one
processor — the *I/O processor* on the primary board — controls a
standard QBus carrying the disk controller (RQDX3), Ethernet controller
(DEQNA) and the display controllers.  Three properties matter to the
model:

- **Asymmetry.** Only the I/O processor touches the QBus; every other
  processor reaches devices through software abstractions (and the
  MDC's memory work queue).
- **Mapping registers.** The QBus has a 22-bit (4 MB) address space,
  mapped into the Firefly's physical space in 512-byte pages by
  registers the I/O processor loads — and DMA can only reach the first
  16 MB of physical memory (the primary-board limit that survives into
  the CVAX machine).
- **DMA through the I/O processor's cache.** Device DMA is presented to
  the MBus by the I/O processor's cache; *misses do not allocate*.
  "When fully loaded, the QBus consumes about 30% of the main memory
  bandwidth": we give the QBus a 1.3 µs per-longword transfer time
  (13 MBus cycles), so a saturated QBus issues one 4-cycle MBus
  operation every 13 cycles — a 31 % load.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.events import Simulator
from repro.common.stats import StatSet, Utilization
from repro.telemetry.probe import NULL_PROBE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.cache import SnoopyCache

QBUS_PAGE_WORDS = 128
"""Words per QBus mapping page (512 bytes)."""

QBUS_PAGES = 8192
"""Number of mapping registers (covering the 4 MB QBus space)."""

QBUS_SPACE_WORDS = QBUS_PAGE_WORDS * QBUS_PAGES
"""Total words addressable on the QBus (22-bit byte space)."""

DMA_REACH_WORDS = (16 * 1024 * 1024) // 4
"""DMA can only reach the first 16 MB of Firefly physical memory."""

DEFAULT_CYCLES_PER_WORD = 9
"""MBus cycles of QBus occupancy per longword, *before* the word's
4-cycle MBus operation.  The total per-word period is therefore 13
cycles (1.3 µs, ~3 MB/s), so a saturated QBus presents an MBus load of
4/13 ~= 31 % — the paper's 'about 30% of the main memory bandwidth'."""


class QBusMap:
    """The scatter-gather mapping registers.

    Each register maps one 512-byte QBus page onto one 512-byte page of
    Firefly physical memory.  The I/O processor's driver software loads
    these before starting a DMA transfer.
    """

    def __init__(self) -> None:
        self._pages: List[Optional[int]] = [None] * QBUS_PAGES

    def map_page(self, qbus_page: int, firefly_word_base: int) -> None:
        """Point QBus page ``qbus_page`` at ``firefly_word_base``.

        The target must be 512-byte aligned and within DMA reach.
        """
        if not 0 <= qbus_page < QBUS_PAGES:
            raise ConfigurationError(f"QBus page {qbus_page} out of range")
        if firefly_word_base % QBUS_PAGE_WORDS != 0:
            raise ConfigurationError(
                f"map target {firefly_word_base:#x} is not page aligned")
        if not 0 <= firefly_word_base < DMA_REACH_WORDS:
            raise ConfigurationError(
                f"map target {firefly_word_base:#x} is beyond the 16 MB "
                f"DMA reach of the I/O system")
        self._pages[qbus_page] = firefly_word_base

    def map_region(self, qbus_word_base: int, firefly_word_base: int,
                   words: int) -> None:
        """Map a contiguous region, page by page."""
        if qbus_word_base % QBUS_PAGE_WORDS != 0:
            raise ConfigurationError(
                f"QBus base {qbus_word_base:#x} is not page aligned")
        pages = -(-words // QBUS_PAGE_WORDS)
        for i in range(pages):
            self.map_page(qbus_word_base // QBUS_PAGE_WORDS + i,
                          firefly_word_base + i * QBUS_PAGE_WORDS)

    def unmap_page(self, qbus_page: int) -> None:
        """Invalidate one mapping register."""
        if not 0 <= qbus_page < QBUS_PAGES:
            raise ConfigurationError(f"QBus page {qbus_page} out of range")
        self._pages[qbus_page] = None

    def translate(self, qbus_word_address: int) -> int:
        """QBus word address -> Firefly physical word address."""
        if not 0 <= qbus_word_address < QBUS_SPACE_WORDS:
            raise SimulationError(
                f"QBus address {qbus_word_address:#x} outside 22-bit space")
        page, offset = divmod(qbus_word_address, QBUS_PAGE_WORDS)
        base = self._pages[page]
        if base is None:
            raise SimulationError(
                f"DMA through unmapped QBus page {page} "
                f"(address {qbus_word_address:#x})")
        return base + offset

    def mapped_pages(self) -> int:
        """Number of currently valid mapping registers."""
        return sum(1 for p in self._pages if p is not None)


class QBus:
    """The I/O bus: serialises device DMA and meters its bandwidth.

    Devices perform block transfers with::

        values = yield from qbus.dma_read_block(qbus_addr, nwords)
        yield from qbus.dma_write_block(qbus_addr, values)

    Each longword occupies the QBus for ``cycles_per_word`` cycles and
    then flows through the I/O processor's cache onto the MBus.
    """

    def __init__(self, sim: Simulator, io_cache: "SnoopyCache",
                 cycles_per_word: int = DEFAULT_CYCLES_PER_WORD) -> None:
        if cycles_per_word < 1:
            raise ConfigurationError(
                f"cycles_per_word must be >= 1, got {cycles_per_word}")
        self.sim = sim
        self.io_cache = io_cache
        self.cycles_per_word = cycles_per_word
        self.map = QBusMap()
        self._resource = sim.resource("QBus")
        self.stats = StatSet("qbus")
        self.utilization = Utilization("qbus")
        #: Telemetry probe; inert unless a TelemetryHub is attached.
        self.probe = NULL_PROBE
        #: Optional fault model (see :mod:`repro.faults.models`); None
        #: in fault-free runs, where the DMA word loop is unchanged.
        self.faults = None
        #: A device that exhausted its DMA retry budget drops to the
        #: degraded state: every later word tenure pays a penalty
        #: (conservative device-side recovery cycles) but data still
        #: moves.  The driver would log and schedule replacement.
        self.degraded = False
        self.degraded_penalty_cycles = 0

    def dma_write_block(self, qbus_word_address: int,
                        values: Sequence[int], ctx=None):
        """Generator: device -> memory DMA of ``values``.

        ``ctx`` optionally names the TraceContext this burst serves;
        the emitted ``dma.burst`` event then carries trace/span ids.
        """
        start = self.sim.now
        for i, value in enumerate(values):
            target = self.map.translate(qbus_word_address + i)
            yield from self._word_tenure()
            yield from self.io_cache.dma_write(target, value)
            self.stats.incr("dma_words_in")
        if self.probe.active:
            self.probe.complete("dma.burst", "qbus", start,
                                self.sim.now - start, direction="in",
                                words=len(values),
                                qbus_address=qbus_word_address,
                                **({"trace": ctx.trace_id,
                                    "span": ctx.span_id}
                                   if ctx is not None else {}))

    def dma_read_block(self, qbus_word_address: int, nwords: int, ctx=None):
        """Generator: memory -> device DMA; returns the words read."""
        start = self.sim.now
        values = []
        for i in range(nwords):
            target = self.map.translate(qbus_word_address + i)
            yield from self._word_tenure()
            value = yield from self.io_cache.dma_read(target)
            values.append(value)
            self.stats.incr("dma_words_out")
        if self.probe.active:
            self.probe.complete("dma.burst", "qbus", start,
                                self.sim.now - start, direction="out",
                                words=nwords, qbus_address=qbus_word_address,
                                **({"trace": ctx.trace_id,
                                    "span": ctx.span_id}
                                   if ctx is not None else {}))
        return values

    def pio(self, register_cycles: int = 8):
        """Generator: one programmed-I/O register access by the I/O CPU.

        Device registers live on the QBus, so touching them costs a bus
        tenure but no MBus traffic.
        """
        yield self._resource.acquire()
        yield self.sim.timeout(register_cycles)
        self.utilization.add_busy(register_cycles)
        self._release()
        self.stats.incr("pio")

    def _word_tenure(self):
        """Generator: one longword's QBus occupancy, with fault handling.

        A device timeout stalls the transfer for ``timeout_cycles``
        before the retry; when the retry budget runs out the device is
        marked degraded and the word proceeds anyway at the degraded
        per-word cost (the controller falls back to its slow path).
        """
        faults = self.faults
        if faults is not None:
            attempts = 0
            while faults.times_out():
                attempts += 1
                self.stats.incr("dma.timeouts")
                if self.probe.active:
                    self.probe.instant("fault.qbus_timeout", "qbus",
                                       attempt=attempts)
                yield self.sim.timeout(faults.timeout_cycles)
                if attempts >= faults.max_retries:
                    self._mark_degraded(faults)
                    break
            if attempts:
                faults.notify_timeouts(attempts, self.degraded)
        cycles = self.cycles_per_word + (self.degraded_penalty_cycles
                                         if self.degraded else 0)
        yield self._resource.acquire()
        yield self.sim.timeout(cycles)
        self.utilization.add_busy(cycles)
        self._release()
        if self.degraded:
            self.stats.incr("dma.degraded_words")

    def _mark_degraded(self, faults) -> None:
        if self.degraded:
            return
        self.degraded = True
        self.degraded_penalty_cycles = faults.degraded_penalty_cycles
        self.stats.incr("dma.degraded")
        if self.probe.active:
            self.probe.instant("fault.device_degraded", "qbus",
                               penalty=self.degraded_penalty_cycles)

    def _release(self) -> None:
        holder = self._resource.holder
        if holder is None:  # pragma: no cover - defensive
            raise SimulationError("QBus released with no holder")
        self._resource.release(holder)

    def load(self) -> float:
        """QBus busy fraction over the current window."""
        return self.utilization.load(self.sim.now)

    def mark_window(self) -> None:
        """Open a measurement window."""
        self.utilization.mark(self.sim.now)
        self.stats.mark_all()
