"""Per-cycle MBus signal tracing and timing-diagram rendering.

The paper's Figure 4 shows the four-cycle layout of an MBus operation:

====== =========================================================
Cycle  Activity
====== =========================================================
1      Arbitration; winner drives address + operation bit
2      Write data (MWrite); snoopers probe their tag stores
3      Snoopers that hold the line assert ``MShared``
4      Read data driven — by memory, or by the sharing caches
       (memory inhibited) when ``MShared`` was asserted
====== =========================================================

:class:`SignalTrace` records these events as the bus model executes
transactions, and :class:`TimingDiagram` renders the trace as the same
kind of waveform picture the figure shows — this is how the Figure 4
benchmark regenerates the artifact from live hardware state rather
than from a hard-coded drawing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.types import BusOp


@dataclass(frozen=True)
class SignalEvent:
    """One signal assertion at an absolute bus cycle."""

    cycle: int
    signal: str
    detail: str = ""


@dataclass
class TransactionTrace:
    """The per-cycle decomposition of one bus transaction."""

    op: BusOp
    address: int
    initiator: int
    start_cycle: int
    shared_response: bool
    supplied_by_cache: bool
    events: List[SignalEvent] = field(default_factory=list)

    @property
    def end_cycle(self) -> int:
        return self.start_cycle + 4


class SignalTrace:
    """Collects :class:`TransactionTrace` records from the bus model.

    Tracing is off by default (it allocates per transaction); the
    Figure 4 bench and the bus unit tests enable it.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        self.transactions: List[TransactionTrace] = []
        self.limit = limit

    @property
    def full(self) -> bool:
        return self.limit is not None and len(self.transactions) >= self.limit

    def record(self, op: BusOp, address: int, initiator: int, start_cycle: int,
               shared_response: bool, supplied_by_cache: bool) -> None:
        """Record one transaction, expanding it into per-cycle events."""
        if self.full:
            return
        trace = TransactionTrace(
            op=op,
            address=address,
            initiator=initiator,
            start_cycle=start_cycle,
            shared_response=shared_response,
            supplied_by_cache=supplied_by_cache,
        )
        events = trace.events
        events.append(SignalEvent(start_cycle, "Arbitrate",
                                  f"requester {initiator} wins"))
        events.append(SignalEvent(start_cycle, "Address",
                                  f"{op.value} {address:#x}"))
        if op.carries_write_data:
            events.append(SignalEvent(start_cycle + 1, "WriteData", "initiator drives"))
        events.append(SignalEvent(start_cycle + 1, "TagProbe", "snoopers probe tags"))
        if shared_response:
            events.append(SignalEvent(start_cycle + 2, "MShared", "asserted by sharer(s)"))
        if op.returns_data:
            source = "cache(s); memory inhibited" if supplied_by_cache else "memory"
            events.append(SignalEvent(start_cycle + 3, "ReadData", source))
        self.transactions.append(trace)


class TimingDiagram:
    """Renders a :class:`SignalTrace` as an ASCII waveform.

    One column per bus cycle, one row per signal, matching Figure 4's
    presentation.  Example output for an MRead answered by a sharer::

        cycle       |  0 |  1 |  2 |  3 |
        Arbitrate   | ## |    |    |    |
        Address     | ## |    |    |    |
        WriteData   |    |    |    |    |
        TagProbe    |    | ## |    |    |
        MShared     |    |    | ## |    |
        ReadData    |    |    |    | ## |
    """

    SIGNAL_ORDER = ["Arbitrate", "Address", "WriteData", "TagProbe",
                    "MShared", "ReadData"]

    def __init__(self, trace: SignalTrace) -> None:
        self.trace = trace

    def render(self, first: int = 0, count: Optional[int] = None) -> str:
        """Render transactions ``[first, first+count)`` as one diagram."""
        txns = self.trace.transactions[first:]
        if count is not None:
            txns = txns[:count]
        if not txns:
            return "(no transactions traced)"
        start = txns[0].start_cycle
        end = max(t.end_cycle for t in txns)
        width = end - start
        active: Dict[str, set] = {sig: set() for sig in self.SIGNAL_ORDER}
        for txn in txns:
            for event in txn.events:
                active.setdefault(event.signal, set()).add(event.cycle - start)
        label_w = max(len(s) for s in self.SIGNAL_ORDER) + 2
        lines = []
        header = "cycle".ljust(label_w) + "|" + "|".join(
            f"{start + c:>3} " for c in range(width)) + "|"
        lines.append(header)
        for signal in self.SIGNAL_ORDER:
            cells = "|".join(" ## " if c in active[signal] else "    "
                             for c in range(width))
            lines.append(signal.ljust(label_w) + "|" + cells + "|")
        ops = ", ".join(
            f"{t.op.value}@{t.start_cycle}"
            f"{' (MShared)' if t.shared_response else ''}" for t in txns)
        lines.append(f"operations: {ops}")
        return "\n".join(lines)
