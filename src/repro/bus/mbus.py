"""The MBus: the Firefly's shared memory bus.

Characteristics (paper, §5 and §5.1):

- 100 ns cycles; every operation (``MRead`` or ``MWrite``) takes 4
  cycles, non-pipelined, giving one four-byte transfer per 400 ns and
  an aggregate bandwidth of 10 MB/s.
- Fixed-priority arbitration among the attached caches (plus the I/O
  processor's cache, through which all DMA flows).
- The ``MShared`` wire: during cycle 3 of an operation, every cache
  other than the initiator that holds the addressed line asserts
  ``MShared``.  The initiator's protocol logic uses the response to set
  its Shared tag; on an ``MRead`` an asserted ``MShared`` also inhibits
  memory, and the sharing caches supply the data (their copies are
  identical, so multiple drivers are harmless).
- Sideband wires carry interprocessor interrupts and initialisation;
  these do not consume data cycles.

Two operation kinds beyond the real MBus's pair — ``MREAD_EX`` and
``MINVALIDATE`` — exist so that baseline coherence protocols can run on
the identical bus model; see :class:`repro.common.types.BusOp`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.common.errors import (
    BusTransferError,
    ConfigurationError,
    SimulationError,
)
from repro.common.events import Simulator
from repro.common.stats import Histogram, StatSet, Utilization
from repro.common.types import MBUS_OP_CYCLES, BusOp, BusTransaction
from repro.bus.signals import SignalTrace
from repro.telemetry.probe import NULL_PROBE

LineData = Tuple[int, ...]


class SnoopResult:
    """What one snooper reports back during a bus operation.

    ``shared``
        The snooper holds the addressed line (drives ``MShared``).
    ``data``
        The line contents, if the snooper can supply them (dirty or
        clean — Firefly caches all drive identical values).  ``None``
        means this snooper does not drive the data wires.
    ``write_back``
        Ask the bus to *snarf* the supplied data into main memory
        during this transaction.  The Firefly never sets this (it
        asserts memory-inhibit instead and keeps the dirty copy);
        Illinois/MESI and write-once use it when a modified holder
        answers a read and simultaneously gives up ownership.

    Treat instances as immutable.  Slotted plain class (not a frozen
    dataclass): one is built per snooped transaction, inside the snoop
    fan-out that dominates multi-CPU runs.
    """

    __slots__ = ("shared", "data", "write_back")

    def __init__(self, shared: bool = False,
                 data: Optional[LineData] = None,
                 write_back: bool = False) -> None:
        self.shared = shared
        self.data = data
        self.write_back = write_back

    def __eq__(self, other: object) -> bool:
        if other.__class__ is SnoopResult:
            return (self.shared == other.shared and self.data == other.data
                    and self.write_back == other.write_back)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.shared, self.data, self.write_back))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SnoopResult(shared={self.shared!r}, data={self.data!r}, "
                f"write_back={self.write_back!r})")


class Snooper(Protocol):
    """Interface a cache exposes to the bus for snooping.

    ``snoop`` is invoked once per transaction, for every attached
    snooper except the initiator, logically during cycles 2-3 (tag
    probe then MShared).  It must apply the protocol's bus-induced
    state transition and return a :class:`SnoopResult`.
    """

    snooper_id: int

    def snoop(self, op: BusOp, line_address: int,
              data: Optional[LineData]) -> SnoopResult:
        ...


class MemoryPort(Protocol):
    """Interface main memory exposes to the bus."""

    def read_line(self, line_address: int) -> LineData:
        ...

    def write_line(self, line_address: int, data: LineData) -> None:
        ...

    def covers(self, line_address: int) -> bool:
        ...


class MBus:
    """The shared memory bus, including arbiter, snoop fan-out and stats.

    A bus *client* (cache or DMA port) performs a transaction with::

        txn = yield from mbus.transaction(priority, BusOp.MREAD, line_addr)

    inside a kernel process.  The call blocks through arbitration and
    the four bus cycles; the returned :class:`BusTransaction` carries
    the ``MShared`` response and (for reads) the line data is applied
    via the ``on_data`` callback the initiator passed, or available as
    ``txn.data`` for single-word lines.

    State changes in snoopers and memory are applied atomically at the
    grant instant; the initiating process is resumed only after the
    final data cycle, so all *timing* (bus occupancy, queueing delay,
    CPU stall) is cycle-exact while *state* is transaction-atomic.
    """

    __slots__ = ("sim", "memory", "words_per_line", "trace", "_resource",
                 "_snoopers", "_snoop_peers", "_interrupt_handlers",
                 "faults", "stats", "utilization", "grant_wait", "probe",
                 "context_source",
                 "_c_ops", "_c_read_memory", "_c_read_cache",
                 "_c_write_mshared", "_c_write_not_mshared",
                 "_c_write_victim", "_c_per_op")

    def __init__(self, sim: Simulator, memory: Optional[MemoryPort] = None,
                 words_per_line: int = 1,
                 trace: Optional[SignalTrace] = None) -> None:
        if words_per_line < 1:
            raise ConfigurationError(
                f"words_per_line must be >= 1, got {words_per_line}")
        self.sim = sim
        self.memory = memory
        self.words_per_line = words_per_line
        self.trace = trace
        self._resource = sim.resource("MBus")
        self._snoopers: List[Snooper] = []
        # Per-initiator snoop fan-out lists: (snooper, bound snoop), in
        # attach order minus the initiator itself.  Rebuilt lazily after
        # any attach/detach; saves re-filtering the initiator and
        # re-creating the bound method on every transaction.
        self._snoop_peers: Dict[int, List] = {}
        self._interrupt_handlers: Dict[int, List[Callable[[int], None]]] = {}
        #: Optional fault model (see :mod:`repro.faults.models`).  When
        #: None — the default — every fault branch below is a single
        #: attribute test, so the happy path is cycle-identical to a
        #: build without the fault subsystem.
        self.faults = None
        self.stats = StatSet("mbus")
        self.utilization = Utilization("mbus")
        #: Bus-grant wait distribution (arbitration queueing latency).
        self.grant_wait = Histogram("mbus.grant_wait")
        #: Telemetry probe; inert unless a TelemetryHub is attached.
        self.probe = NULL_PROBE
        #: Optional ``initiator -> TraceContext`` callable (the Topaz
        #: kernel installs one); consulted only when the probe is
        #: active, to stamp trace/span ids onto ``bus.op`` events.
        self.context_source = None
        # The reporting counters exist from construction (not lazily on
        # first increment), so metric collection can tell "zero events"
        # apart from "counter renamed" — see StatSet.get_windowed.  They
        # are also kept pre-bound: _count runs once per bus operation
        # and a bound Counter.add skips the StatSet key lookup.
        stats = self.stats
        self._c_ops = stats.counter("ops")
        self._c_read_memory = stats.counter("read.memory_supplied")
        self._c_read_cache = stats.counter("read.cache_supplied")
        self._c_write_mshared = stats.counter("write.mshared")
        self._c_write_not_mshared = stats.counter("write.not_mshared")
        self._c_write_victim = stats.counter("write.victim")
        self._c_per_op = {op: stats.counter(f"op.{op.value}")
                          for op in BusOp}

    # -- configuration -------------------------------------------------

    def attach_memory(self, memory: MemoryPort) -> None:
        """Attach the main-memory module array (exactly once)."""
        if self.memory is not None:
            raise ConfigurationError("MBus already has memory attached")
        self.memory = memory

    def attach_snooper(self, snooper: Snooper) -> None:
        """Attach a cache's snoop port; order is irrelevant to results.

        Arbitration priorities are validated here, eagerly: the fixed
        priority chain of the real arbiter cannot hold a negative slot,
        and two clients on the same level would tie every arbitration
        — a miswired machine, not a runnable one.
        """
        if any(s.snooper_id == snooper.snooper_id for s in self._snoopers):
            raise ConfigurationError(
                f"duplicate snooper id {snooper.snooper_id}")
        priority = getattr(snooper, "priority", None)
        if priority is not None:
            if priority < 0:
                raise ConfigurationError(
                    f"snooper {snooper.snooper_id} has negative arbitration "
                    f"priority {priority}")
            for other in self._snoopers:
                if getattr(other, "priority", None) == priority:
                    raise ConfigurationError(
                        f"snoopers {other.snooper_id} and "
                        f"{snooper.snooper_id} share fixed arbitration "
                        f"priority {priority}")
        self._snoopers.append(snooper)
        self._snoop_peers.clear()

    def detach_snooper(self, snooper_id: int) -> None:
        """Remove a cache from the snoop fan-out (CPU-board offlining)."""
        for i, snooper in enumerate(self._snoopers):
            if snooper.snooper_id == snooper_id:
                del self._snoopers[i]
                self._snoop_peers.clear()
                return
        raise ConfigurationError(f"no snooper {snooper_id} attached")

    @property
    def snoopers(self) -> Tuple[Snooper, ...]:
        return tuple(self._snoopers)

    # -- transactions ---------------------------------------------------

    def transaction(self, priority: int, op: BusOp, line_address: int,
                    initiator: int, data: Optional[LineData] = None,
                    is_victim: bool = False, update_memory: bool = True):
        """Perform one bus operation.  Generator; use ``yield from``.

        Parameters
        ----------
        priority:
            Arbitration priority (lower wins), fixed per cache slot.
        op:
            The bus operation kind.
        line_address:
            First word address of the (aligned) line.
        initiator:
            Snooper id of the initiating cache (or a DMA port id);
            the initiator is excluded from the snoop fan-out.
        data:
            For MWRITE: the line data driven in cycle 2 — either the
            tuple itself, or a zero-argument callable evaluated at the
            grant instant.  The callable form exists because a writer
            can be *queued* behind another write to the same line: the
            earlier write updates the queued writer's cached copy via
            snooping, and the queued writer must then drive its own
            word merged into that updated line, exactly as byte-enable
            hardware would.  Capturing the payload at request time
            would regress the earlier write.
        is_victim:
            Marks an MWRITE as a victim write-back (measurement
            category only; the wire protocol is identical).
        update_memory:
            When False, an MWRITE updates snoopers but not main memory
            (the Dragon's shared-update broadcast, where the writer
            remains owner and memory stays stale until victimisation).
            The Firefly always updates memory.
        """
        if op is BusOp.MWRITE and data is None:
            raise SimulationError(f"{op} requires write data")
        wpl = self.words_per_line
        if wpl != 1 and line_address % wpl != 0:
            raise SimulationError(
                f"unaligned line address {line_address:#x} "
                f"(words_per_line={wpl})")
        attempts = 0
        sim = self.sim
        resource = self._resource
        while True:
            requested = sim.now
            yield resource.acquire(priority=priority)
            start = sim.now
            self.grant_wait.record(start - requested)
            faults = self.faults
            corrupted = (faults is not None
                         and faults.corrupts(op, line_address, initiator))
            if not corrupted:
                txn = self._execute(op, line_address, initiator, data,
                                    is_victim, start, update_memory)
            yield sim.timeout(MBUS_OP_CYCLES)
            holder = resource.holder
            if holder is None:  # pragma: no cover - defensive
                raise SimulationError("bus released mid-transaction")
            resource.release(holder)
            if not corrupted:
                break
            # Parity failed during the data cycles: the tenure occupied
            # the bus but applied no state.  Back off, then re-arbitrate.
            attempts += 1
            self.utilization.add_busy(MBUS_OP_CYCLES)
            self.stats.incr("parity.errors")
            if self.probe.active:
                self.probe.instant("fault.bus_parity", "bus", op=op.value,
                                   address=line_address, initiator=initiator,
                                   attempt=attempts)
            if attempts > faults.max_retries:
                faults.notify_exhausted(op, line_address, initiator,
                                        attempts)
                raise BusTransferError(op, line_address, initiator, attempts)
            yield self.sim.timeout(faults.backoff_cycles(attempts))
        if attempts:
            self.stats.incr("parity.recovered")
            if faults is not None:
                faults.notify_recovered(op, line_address, initiator,
                                        attempts)
        probe = self.probe
        if probe.active:
            # `wait` makes the event a self-contained latency span:
            # request at start-wait, grant at start, release at
            # start+duration — the decomposition repro.observatory
            # rebuilds transaction spans from.
            causal = {}
            source = self.context_source
            if source is not None:
                ctx = source(initiator)
                if ctx is not None:
                    causal = {"trace": ctx.trace_id, "span": ctx.span_id}
            probe.complete("bus.op", "bus", start, MBUS_OP_CYCLES,
                           op=op.value, address=line_address,
                           initiator=initiator, wait=start - requested,
                           shared=txn.shared_response,
                           cache_supplied=txn.supplied_by_cache,
                           victim=is_victim, **causal)
            if start > requested:
                probe.instant_at("bus.grant", "bus", start,
                                 wait=start - requested, initiator=initiator)
        return txn

    def _execute(self, op: BusOp, line_address: int, initiator: int,
                 data: Optional[LineData], is_victim: bool,
                 start: int, update_memory: bool = True) -> BusTransaction:
        """Apply the transaction's state effects and gather responses."""
        if callable(data):
            data = data()
        shared = False
        snarf = False
        cache_data: Optional[LineData] = None
        faults = self.faults
        peers = self._snoop_peers.get(initiator)
        if peers is None:
            peers = self._snoop_peers[initiator] = [
                (s, s.snoop) for s in self._snoopers
                if s.snooper_id != initiator]
        for snooper, probe_snoop in peers:
            if (faults is not None
                    and faults.drops_snoop(snooper, op, line_address)):
                # The snoop probe never reached this cache: it neither
                # updates its copy nor asserts MShared.  Whatever state
                # damage follows is the invariant checkers' to find.
                self.stats.incr("snoop.dropped")
                if self.probe.active:
                    self.probe.instant("fault.snoop_drop", "bus",
                                       op=op.value, address=line_address,
                                       victim=snooper.snooper_id)
                continue
            result = probe_snoop(op, line_address, data)
            if result.shared:
                shared = True
            if result.write_back:
                snarf = True
            rdata = result.data
            if rdata is not None:
                if cache_data is not None and cache_data != rdata:
                    raise SimulationError(
                        f"caches drove conflicting data for {line_address:#x}: "
                        f"{cache_data} vs {rdata}")
                cache_data = rdata

        supplied_by_cache = False
        returned: Optional[LineData] = None
        if op is BusOp.MWRITE:
            # Write-throughs and victim writes always update main memory
            # ("other caches that share the datum are updated, as is
            # main storage").
            if update_memory and self.memory is not None:
                self.memory.write_line(line_address, data)
        elif op is not BusOp.MINVALIDATE:  # MRead / MReadEx return data
            if cache_data is not None:
                supplied_by_cache = True
                returned = cache_data
            elif self.memory is not None:
                returned = self.memory.read_line(line_address)
            else:
                raise SimulationError("MRead with no memory and no sharer")
            if snarf and self.memory is not None:
                # Illinois-style reflection: the previous owner's data is
                # written to memory in the same transaction.
                self.memory.write_line(line_address, returned)
                self.stats.incr("read.snarfed")

        self._count(op, shared, is_victim, supplied_by_cache)
        if self.trace is not None:
            self.trace.record(op, line_address, initiator, start, shared,
                              supplied_by_cache)
        word = None
        if returned is not None and self.words_per_line == 1:
            word = returned[0]
        return BusTransaction(
            op=op,
            address=line_address,
            initiator=initiator,
            start_cycle=start,
            shared_response=shared,
            supplied_by_cache=supplied_by_cache,
            is_victim=is_victim,
            data=word if word is not None else (returned if returned else None),
        )

    def _count(self, op: BusOp, shared: bool, is_victim: bool,
               supplied_by_cache: bool) -> None:
        self.utilization.add_busy(MBUS_OP_CYCLES)
        self._c_ops.add()
        self._c_per_op[op].add()
        if op is BusOp.MWRITE:
            if is_victim:
                self._c_write_victim.add()
            elif shared:
                self._c_write_mshared.add()
            else:
                self._c_write_not_mshared.add()
        elif op is not BusOp.MINVALIDATE:  # MRead / MReadEx
            (self._c_read_cache if supplied_by_cache
             else self._c_read_memory).add()

    # -- measurement ----------------------------------------------------

    def mark_window(self) -> None:
        """Open a measurement window on load and all counters."""
        self.utilization.mark(self.sim.now)
        self.stats.mark_all()

    def load(self) -> float:
        """Bus load L (busy fraction) over the open window."""
        return self.utilization.load(self.sim.now)

    @property
    def queue_wait_cycles(self) -> int:
        """Cumulative cycles initiators spent waiting for grants."""
        return self._resource.total_wait

    @property
    def busy(self) -> bool:
        """Whether a transaction is in flight right now (prefetch throttle)."""
        return self._resource.holder is not None

    @property
    def queue_depth(self) -> int:
        """Initiators currently waiting for a grant (sampler gauge)."""
        return self._resource.queue_length

    # -- interprocessor interrupts ---------------------------------------

    def register_interrupt_handler(self, target: int,
                                   handler: Callable[[int], None]) -> None:
        """Register ``handler(sender)`` for IPIs aimed at ``target``."""
        self._interrupt_handlers.setdefault(target, []).append(handler)

    def send_interrupt(self, target: int, sender: int) -> None:
        """Deliver an interprocessor interrupt over the sideband wires.

        IPIs use dedicated MBus wires, so they consume no data cycles;
        delivery is immediate (handlers run at the current time).
        Sending to a target with no registered handler is a wiring
        error: the interrupt would assert a line nothing listens to.
        """
        handlers = self._interrupt_handlers.get(target)
        if not handlers:
            raise ConfigurationError(
                f"IPI to target {target} with no registered interrupt "
                f"handler")
        self.stats.incr("ipi")
        if self.probe.active:
            self.probe.instant("bus.ipi", "bus", target=target, sender=sender)
        for handler in handlers:
            handler(sender)
